package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtdvs/internal/experiment"
	"rtdvs/internal/sim"
	"rtdvs/internal/task"
)

// paperTasks is the Table 2 example set as request JSON.
func paperTasks() []task.Task {
	return []task.Task{
		{Period: 8, WCET: 3},
		{Period: 10, WCET: 3},
		{Period: 14, WCET: 1},
	}
}

// newTestServer builds, starts, and tears down a server around a test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// The simulate endpoint must agree exactly with a direct sim.Run of the
// same configuration.
func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := SimulateRequest{Tasks: paperTasks(), Policy: "ccEDF", Exec: "c=0.9", Horizon: 280}
	body, _ := json.Marshal(req)
	resp := postJSON(t, ts.URL+"/v1/simulate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[sim.Result](t, resp)

	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEnergy != want.TotalEnergy || got.Switches != want.Switches ||
		got.Completions != want.Completions || got.Policy != want.Policy {
		t.Errorf("endpoint result %+v differs from direct run %+v", got, want)
	}
}

// Every malformed or invalid body must be rejected with 400 and an
// explanatory message, never a panic or a silent default.
func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body, wantMsg string
	}{
		{"emptyBody", ``, "EOF"},
		{"notJSON", `{"tasks":`, "unexpected EOF"},
		{"unknownField", `{"tasks":[{"period":8,"wcet":3}],"bogus":1}`, "unknown field"},
		{"trailingGarbage", `{"tasks":[{"period":8,"wcet":3}]} "extra"`, "trailing data"},
		{"noTasks", `{"tasks":[]}`, "empty task set"},
		{"negativePeriod", `{"tasks":[{"period":-8,"wcet":3}]}`, "period must be positive"},
		{"wcetOverPeriod", `{"tasks":[{"period":4,"wcet":5}]}`, "exceeds period"},
		{"badPolicy", `{"tasks":[{"period":8,"wcet":3}],"policy":"warp"}`, "unknown policy"},
		{"badMachine", `{"tasks":[{"period":8,"wcet":3}],"machine":"cray"}`, "unknown machine"},
		{"machineConflict", `{"tasks":[{"period":8,"wcet":3}],"machine":"machine1","machineSpec":{"points":[{"freq":1,"voltage":5}]}}`, "mutually exclusive"},
		{"badCustomSpec", `{"tasks":[{"period":8,"wcet":3}],"machineSpec":{"points":[{"freq":0.5,"voltage":3}]}}`, "maximum frequency"},
		{"badIdle", `{"tasks":[{"period":8,"wcet":3}],"idleLevel":1.5}`, "idle level"},
		{"badExec", `{"tasks":[{"period":8,"wcet":3}],"exec":"c=2"}`, "bad execution fraction"},
		{"negativeHorizon", `{"tasks":[{"period":8,"wcet":3}],"horizon":-5}`, "non-negative"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/simulate", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			eb := decodeBody[errorBody](t, resp)
			if !strings.Contains(eb.Error, tc.wantMsg) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.wantMsg)
			}
		})
	}
}

// A body over the limit is refused with 413.
func TestSimulateBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 256})
	resp := postJSON(t, ts.URL+"/v1/simulate", `{"tasks":[`+strings.Repeat(`{"period":8,"wcet":3},`, 100)+`]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()
}

// With every simulate slot held, the next request is shed immediately
// with 429 and a Retry-After hint.
func TestSimulateShedsWhenFull(t *testing.T) {
	s, ts := newTestServer(t, Config{SimConcurrency: 2, RetryAfter: 3 * time.Second})
	// Occupy both slots deterministically.
	s.simSem <- struct{}{}
	s.simSem <- struct{}{}
	defer func() { <-s.simSem; <-s.simSem }()

	body, _ := json.Marshal(SimulateRequest{Tasks: paperTasks()})
	resp := postJSON(t, ts.URL+"/v1/simulate", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	resp.Body.Close()
}

// A client that walks away mid-simulation gets its run cancelled
// within the cooperative-check latency, not at the horizon.
func TestSimulateClientCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A horizon this deep takes >>1s to simulate; the request is
	// cancelled after 30ms.
	body, _ := json.Marshal(SimulateRequest{Tasks: paperTasks(), Horizon: 1e9})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = http.DefaultClient.Do(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request succeeded despite cancellation")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled request took %v to return", elapsed)
	}
}

// A simulation over the server-side time limit returns 504.
func TestSimulateServerTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{SimTimeout: 30 * time.Millisecond})
	body, _ := json.Marshal(SimulateRequest{Tasks: paperTasks(), Horizon: 1e9})
	resp := postJSON(t, ts.URL+"/v1/simulate", string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	eb := decodeBody[errorBody](t, resp)
	if !strings.Contains(eb.Error, "stopped at") {
		t.Errorf("timeout error %q does not report partial progress", eb.Error)
	}
}

// A panicking handler becomes a 500; the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	var logged string
	s := New(Config{Logf: func(f string, args ...any) { logged = fmt.Sprintf(f, args...) }})
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(logged, "boom") {
		t.Errorf("panic not logged: %q", logged)
	}
	// The handler chain survives and serves the next request.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rec.Code)
	}
}

// A sweep job runs to completion and matches a direct experiment.Run.
func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req := SweepRequest{
		Policies:     []string{"none", "ccEDF"},
		NTasks:       3,
		Utilizations: []float64{0.4, 0.8},
		Sets:         2,
		Seed:         9,
		Horizon:      150,
	}
	body, _ := json.Marshal(req)
	resp := postJSON(t, ts.URL+"/v1/sweep", string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	if st.ID == "" || st.Status != JobQueued {
		t.Fatalf("bad accepted status %+v", st)
	}

	c := NewClient(ts.URL, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := c.WaitJob(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != JobDone || final.Sweep == nil {
		t.Fatalf("job finished as %+v", final)
	}

	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Sweep.Utilizations) != len(want.Utilizations) ||
		final.Sweep.Energy["ccEDF"][0] != want.Energy["ccEDF"][0] {
		t.Errorf("served sweep %+v differs from direct run %+v", final.Sweep, want)
	}
}

// With no workers started and the queue full, sweep submissions are
// shed with 429; polling an unknown job is 404.
func TestSweepQueueFull(t *testing.T) {
	s := New(Config{QueueDepth: 1})
	// No Start(): nothing drains the queue.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	body, _ := json.Marshal(SweepRequest{NTasks: 3, Sets: 1, Utilizations: []float64{0.5}})
	if resp := postJSON(t, ts.URL+"/v1/sweep", string(body)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d, want 202", resp.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// Shutdown flips readiness, refuses new sweeps, cancels outstanding
// jobs, and leaves every job in a terminal state.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	}

	// One long-running job (deep horizon) plus queued ones behind it.
	long, _ := json.Marshal(SweepRequest{NTasks: 4, Sets: 8, Seed: 3, Horizon: 1e7})
	var ids []string
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/sweep", string(long))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, decodeBody[JobStatus](t, resp).ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx) // deadline forces cancellation of the running job
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v", elapsed)
	}
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("shutdown: %v", err)
	}

	// Draining state is visible and new work is refused.
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", string(long))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	for _, id := range ids {
		st := s.store.get(id).Status()
		if !st.Status.Terminal() {
			t.Errorf("job %s left in non-terminal state %q", id, st.Status)
		}
	}
	// Second Shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// The full server lifecycle must not leak goroutines.
func TestServerLifecycleGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s := New(Config{Workers: 3, Logf: t.Logf})
		s.Start()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		body, _ := json.Marshal(SimulateRequest{Tasks: paperTasks()})
		for i := 0; i < 5; i++ {
			resp := postJSON(t, ts.URL+"/v1/simulate", string(body))
			resp.Body.Close()
		}
		sweep, _ := json.Marshal(SweepRequest{NTasks: 3, Sets: 1, Utilizations: []float64{0.5}, Horizon: 100})
		resp := postJSON(t, ts.URL+"/v1/sweep", string(sweep))
		id := decodeBody[JobStatus](t, resp).ID
		c := NewClient(ts.URL, 1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := c.WaitJob(ctx, id, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	http.DefaultClient.CloseIdleConnections()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
