package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rtdvs/internal/experiment"
	"rtdvs/internal/obs"
	"rtdvs/internal/sim"
)

// StatusClientClosedRequest is the nginx-convention status reported when
// the client abandoned a request before the simulation finished.
const StatusClientClosedRequest = 499

// Config tunes the server's resource bounds. The zero value selects the
// defaults noted per field.
type Config struct {
	// SimConcurrency bounds concurrent /v1/simulate runs (default
	// GOMAXPROCS). Requests beyond the bound are shed with 429.
	SimConcurrency int
	// Workers is the number of goroutines draining the sweep queue
	// (default 2).
	Workers int
	// QueueDepth bounds the sweep queue (default 16). Submissions beyond
	// it are shed with 429.
	QueueDepth int
	// SimTimeout caps one simulate request (default 30s).
	SimTimeout time.Duration
	// SweepTimeout caps one sweep job (default 10m).
	SweepTimeout time.Duration
	// ShardConcurrency bounds concurrent /v1/shard runs (default
	// GOMAXPROCS). Requests beyond the bound are shed with 429; the
	// fabric coordinator's backoff paces itself off the hint.
	ShardConcurrency int
	// ShardTimeout caps one shard request (default 2m).
	ShardTimeout time.Duration
	// ShardCacheSize bounds the shard result cache (default 128
	// entries). Retried and hedged shards replay from the cache instead
	// of recomputing.
	ShardCacheSize int
	// MaxBatchItems caps the item count of one /v1/simulate:batch
	// request (default 256). Larger batches are refused with 400.
	MaxBatchItems int
	// RetryAfter is the hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
	// Registry receives the server's metrics (default: a fresh private
	// registry). Share one registry across components to serve a single
	// /metrics page for the whole process.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.SimConcurrency <= 0 {
		c.SimConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.SimTimeout <= 0 {
		c.SimTimeout = 30 * time.Second
	}
	if c.SweepTimeout <= 0 {
		c.SweepTimeout = 10 * time.Minute
	}
	if c.ShardConcurrency <= 0 {
		c.ShardConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Minute
	}
	if c.ShardCacheSize <= 0 {
		c.ShardCacheSize = 128
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the HTTP simulation service. Create with New, install
// Handler into an http.Server, call Start, and Shutdown to drain.
type Server struct {
	cfg      Config
	handler  http.Handler
	store    *jobStore
	registry *obs.Registry
	metrics  *serverMetrics
	// sweepMetrics aggregates job progress across every sweep the
	// workers run, so GET /metrics shows sweep throughput, not just
	// queue depth.
	sweepMetrics *experiment.Metrics

	simSem     chan struct{} // counting semaphore for simulate slots
	shardSem   chan struct{} // counting semaphore for shard slots
	shardCache *shardCache

	queueMu sync.RWMutex // guards queue sends against close on Shutdown
	queue   chan *job
	closed  bool

	draining atomic.Bool
	wg       sync.WaitGroup
	// inflight counts synchronous shard work. inflightMu orders its
	// Add against the draining flag: beginShard only Adds while holding
	// the mutex with draining unset, and Shutdown passes through the
	// mutex after setting the flag, so no Add-from-zero can race the
	// Wait (the sync.WaitGroup contract).
	inflightMu sync.Mutex
	inflight   sync.WaitGroup
	baseCtx    context.Context // parent of every sweep job's context
	baseCancel context.CancelFunc
}

// New builds a server; call Start before serving traffic.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		store:      newJobStore(),
		registry:   cfg.Registry,
		simSem:     make(chan struct{}, cfg.SimConcurrency),
		shardSem:   make(chan struct{}, cfg.ShardConcurrency),
		shardCache: newShardCache(cfg.ShardCacheSize),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.metrics = newServerMetrics(s.registry, s)
	s.sweepMetrics = experiment.NewMetrics(s.registry)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/simulate:batch", s.instrument("simulateBatch", s.handleSimulateBatch))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/shard", s.instrument("shard", s.handleShard))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.handler = s.recoverPanics(mux)
	return s
}

// Handler returns the root handler (panic recovery included).
func (s *Server) Handler() http.Handler { return s.handler }

// Start launches the sweep workers.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the server: readiness flips to 503, new sweep and
// shard submissions are refused, queued and running work — including
// synchronous shard requests in flight — is given until ctx expires to
// finish, then every context is cancelled and the stragglers are
// awaited unconditionally. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Barrier: any beginShard that saw draining unset has finished its
	// Add once we pass here; later ones refuse. See inflightMu.
	s.inflightMu.Lock()
	s.inflightMu.Unlock()
	s.queueMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.queueMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline hit: cancel in-flight sweeps and shards. Their runs
		// stop at the next cooperative check and the workers exit
		// promptly.
		err = ctx.Err()
	}
	s.baseCancel()
	<-done
	// Jobs still queued when the channel closed never reach a worker;
	// mark them cancelled so clients polling them see a terminal state.
	s.store.each(func(j *job) {
		j.setState(JobCancelled, errors.New("server shut down before the job ran"), nil)
	})
	return err
}

// beginShard registers one in-flight shard, refusing when the server
// is draining. Balanced by s.inflight.Done() in the caller.
func (s *Server) beginShard() bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// worker drains the sweep queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.SweepTimeout)
	defer cancel()
	j.setState(JobRunning, nil, nil)
	j.cfg.Metrics = s.sweepMetrics
	sw, err := experiment.RunContext(ctx, j.cfg)
	switch {
	case err == nil:
		j.setState(JobDone, nil, sw)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.setState(JobCancelled, err, nil)
	default:
		j.setState(JobFailed, err, nil)
	}
}

// recoverPanics converts a handler panic into a 500 without killing the
// process; the in-flight connection is answered if nothing was written
// yet.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				buf := make([]byte, 8<<10)
				buf = buf[:runtime.Stack(buf, false)]
				s.cfg.Logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, buf)
				s.writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if req.Multi() {
		s.handleSimulateMulti(w, r, &req)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Bounded concurrency: a free slot or an immediate 429. No waiting —
	// shedding early keeps tail latency flat under overload and lets the
	// retry client pace itself off Retry-After.
	select {
	case s.simSem <- struct{}{}:
		defer func() { <-s.simSem }()
	default:
		s.shed(w)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SimTimeout)
	defer cancel()
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		var canceled *sim.Canceled
		switch {
		case errors.As(err, &canceled) && errors.Is(err, context.DeadlineExceeded):
			s.metrics.timeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("simulation exceeded the %v limit (stopped at t=%g of %g)",
					s.cfg.SimTimeout, canceled.At, cfg.Horizon))
		case errors.As(err, &canceled):
			// The client went away; status is for logs only.
			s.writeError(w, StatusClientClosedRequest, errors.New("client closed request"))
		default:
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleSimulateMulti is handleSimulate for cores > 1 requests: the
// same concurrency slot, timeout, and error mapping, run on the
// multi-core engine; the response body is a sim.MultiResult.
func (s *Server) handleSimulateMulti(w http.ResponseWriter, r *http.Request, req *SimulateRequest) {
	cfg, err := req.MultiConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	select {
	case s.simSem <- struct{}{}:
		defer func() { <-s.simSem }()
	default:
		s.shed(w)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SimTimeout)
	defer cancel()
	res, err := sim.RunMultiContext(ctx, cfg)
	if err != nil {
		var canceled *sim.MultiCanceled
		switch {
		case errors.As(err, &canceled) && errors.Is(err, context.DeadlineExceeded):
			s.metrics.timeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("simulation exceeded the %v limit (stopped at t=%g of %g)",
					s.cfg.SimTimeout, canceled.At, cfg.Horizon))
		case errors.As(err, &canceled):
			s.writeError(w, StatusClientClosedRequest, errors.New("client closed request"))
		default:
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// The read lock lets submissions proceed concurrently while still
	// excluding Shutdown's close of the queue.
	s.queueMu.RLock()
	defer s.queueMu.RUnlock()
	if s.closed || s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	j := s.store.create(cfg)
	select {
	case s.queue <- j:
		s.writeJSON(w, http.StatusAccepted, j.Status())
	default:
		j.setState(JobCancelled, errors.New("queue full"), nil)
		s.shed(w)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, j.Status())
}

// readRequest enforces the body bound and strict decoding; it answers
// the request itself on failure.
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBody))
		} else {
			s.writeError(w, http.StatusBadRequest, err)
		}
		return false
	}
	if err := decodeStrict(body, v); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// shed answers an over-capacity request: 429 plus the Retry-After hint
// the backoff client honors.
func (s *Server) shed(w http.ResponseWriter) {
	s.metrics.shed.Inc()
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeError(w, http.StatusTooManyRequests, errors.New("server at capacity"))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Logf("serve: writing response: %v", err)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}
