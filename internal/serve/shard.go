package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"rtdvs/internal/checkpoint"
	"rtdvs/internal/experiment"
)

// ShardRequest is the body of POST /v1/shard: run a subset of a sweep's
// job grid synchronously and return the per-job results. It is the
// worker half of the distributed sweep fabric — the coordinator
// (internal/fabric) splits a sweep into shards, posts each to a worker,
// and folds the results deterministically.
type ShardRequest struct {
	// Sweep is the full sweep configuration. Every worker receives the
	// identical configuration; only Jobs varies per shard. Per-job seeds
	// are a pure function of (configuration, job index), so where a job
	// runs cannot change what it computes.
	Sweep SweepRequest `json:"sweep"`
	// Jobs lists the flat job indexes (ui*sets+si) of this shard.
	Jobs []int `json:"jobs"`
}

// ShardResponse carries a shard's results back to the coordinator.
type ShardResponse struct {
	Results []experiment.JobResult `json:"results"`
	// Cached reports that the response was served from the worker's
	// result cache rather than recomputed — a retried or hedged shard
	// whose first execution already completed.
	Cached bool `json:"cached,omitempty"`
}

// shardKey is the content address of a shard result: the sweep's
// canonical header plus the shard's job list, fingerprinted with the
// same definition the checkpoint journal uses for "same configuration".
type shardKey struct {
	Header experiment.SweepHeader `json:"header"`
	Jobs   []int                  `json:"jobs"`
}

// shardCache is a bounded FIFO of completed shard results. Retries and
// hedges make duplicate shard executions routine, and shard results are
// deterministic, so caching by content address turns every duplicate
// into a cheap replay. FIFO (not LRU) keeps eviction O(1) and is
// adequate: a sweep's shards are each requested a handful of times in
// close succession, then never again.
type shardCache struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	m     map[string][]experiment.JobResult
}

func newShardCache(capacity int) *shardCache {
	return &shardCache{cap: capacity, m: make(map[string][]experiment.JobResult, capacity)}
}

func (c *shardCache) get(key string) ([]experiment.JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[key]
	return res, ok
}

func (c *shardCache) put(key string, res []experiment.JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[key] = res
	c.order = append(c.order, key)
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	cfg, err := req.Sweep.Config()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("serve: shard has no jobs"))
		return
	}
	njobs, err := experiment.NumJobs(cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, j := range req.Jobs {
		if j < 0 || j >= njobs {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: job index %d outside the grid [0, %d)", j, njobs))
			return
		}
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}

	header, err := experiment.Header(cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := checkpoint.Fingerprint(shardKey{Header: header, Jobs: req.Jobs})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if res, ok := s.shardCache.get(key); ok {
		s.metrics.shardCacheHits.Inc()
		s.writeJSON(w, http.StatusOK, ShardResponse{Results: res, Cached: true})
		return
	}
	s.metrics.shardCacheMisses.Inc()

	// Bounded concurrency, same shape as /v1/simulate: a free slot or an
	// immediate 429 the coordinator's backoff paces itself off.
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	default:
		s.shed(w)
		return
	}

	// Track the run so Shutdown can wait for in-flight shard work, and
	// tie its context to both the request (client gone → stop) and the
	// server's base context (Shutdown deadline hit → stop).
	if !s.beginShard() {
		s.writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	defer s.inflight.Done()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ShardTimeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	cfg.Metrics = s.sweepMetrics
	results, err := experiment.RunJobs(ctx, cfg, req.Jobs)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.timeouts.Inc()
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("shard exceeded the %v limit", s.cfg.ShardTimeout))
		case errors.Is(err, context.Canceled):
			s.writeError(w, StatusClientClosedRequest, errors.New("client closed request"))
		default:
			s.writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.shardCache.put(key, results)
	s.writeJSON(w, http.StatusOK, ShardResponse{Results: results})
}

// Shard runs one shard synchronously on the worker, retrying transient
// failures like every other client call.
func (c *Client) Shard(ctx context.Context, req ShardRequest) (*ShardResponse, error) {
	var res ShardResponse
	if err := c.call(ctx, "POST", "/v1/shard", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
