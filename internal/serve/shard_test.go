package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtdvs/internal/experiment"
)

// shardSweep is a small sweep request shared by the shard tests.
func shardSweep() SweepRequest {
	return SweepRequest{
		Policies:     []string{"none", "ccEDF"},
		NTasks:       3,
		Utilizations: []float64{0.3, 0.6, 0.9},
		Sets:         2,
		Seed:         11,
		Horizon:      200,
	}
}

// A shard executed over HTTP must return exactly what RunJobs computes
// locally — this is the wire half of the fabric's bit-identity claim.
func TestShardEndpointMatchesLocal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := NewClient(ts.URL, 1)

	req := ShardRequest{Sweep: shardSweep(), Jobs: []int{1, 3, 4}}
	resp, err := client.Shard(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("first execution reported Cached")
	}

	cfg, err := req.Sweep.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.RunJobs(context.Background(), cfg, req.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Results, want) {
		t.Fatalf("remote shard differs from local:\nremote %+v\nlocal  %+v", resp.Results, want)
	}
}

// A repeated shard — the retry/hedge case — replays from the result
// cache, bit-identical, and the hit/miss counters account for it.
func TestShardCacheReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	client := NewClient(ts.URL, 1)

	req := ShardRequest{Sweep: shardSweep(), Jobs: []int{0, 5}}
	first, err := client.Shard(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Shard(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second execution not served from cache")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("cached replay differs from original")
	}
	if hits := s.metrics.shardCacheHits.Value(); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := s.metrics.shardCacheMisses.Value(); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}

	// A different job list is a different content address.
	other, err := client.Shard(context.Background(), ShardRequest{Sweep: shardSweep(), Jobs: []int{5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("differently-ordered job list hit the cache")
	}
}

func TestShardValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"no jobs":       `{"sweep":{"nTasks":3,"sets":2},"jobs":[]}`,
		"out of grid":   `{"sweep":{"nTasks":3,"sets":2,"utilizations":[0.5]},"jobs":[2]}`,
		"negative":      `{"sweep":{"nTasks":3,"sets":2},"jobs":[-1]}`,
		"bad sweep":     `{"sweep":{"nTasks":0},"jobs":[0]}`,
		"unknown field": `{"sweep":{"nTasks":3},"jobs":[0],"bogus":1}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/shard", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// The FIFO cache evicts its oldest entry at capacity and never grows
// past the bound.
func TestShardCacheEviction(t *testing.T) {
	c := newShardCache(2)
	r := func(i int) []experiment.JobResult { return []experiment.JobResult{{Index: i}} }
	c.put("a", r(0))
	c.put("b", r(1))
	c.put("a", r(9)) // duplicate put: ignored, no eviction
	if got, ok := c.get("a"); !ok || got[0].Index != 0 {
		t.Fatal("duplicate put overwrote or evicted the original")
	}
	c.put("c", r(2)) // evicts "a", the oldest
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("newer entry evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("just-inserted entry missing")
	}
	if len(c.m) != 2 || len(c.order) != 2 {
		t.Errorf("cache holds %d/%d entries, want 2/2", len(c.m), len(c.order))
	}
}

// Shards beyond the concurrency bound are shed with 429, not queued.
func TestShardShedsWhenFull(t *testing.T) {
	s, ts := newTestServer(t, Config{ShardConcurrency: 1, RetryAfter: 3 * time.Second})
	// Occupy the only slot deterministically.
	s.shardSem <- struct{}{}
	defer func() { <-s.shardSem }()

	resp := postJSON(t, ts.URL+"/v1/shard", `{"sweep":{"nTasks":3,"sets":2},"jobs":[0]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
}

// Satellite: graceful drain must wait for in-flight shard work — the
// response is written before Shutdown returns, and no handler
// goroutines outlive it.
func TestShardDrainWaitsForInflight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Logf: t.Logf})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	started := make(chan struct{})
	type result struct {
		status int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		close(started)
		resp, err := http.Post(ts.URL+"/v1/shard", "application/json",
			strings.NewReader(`{"sweep":{"nTasks":6,"sets":8,"seed":5,"horizon":2000},"jobs":[0,1,2,3,4,5,6,7]}`))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()
	<-started
	// Wait for the shard to actually be in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.shardCacheMisses.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}
	// Shutdown returned within the deadline, so the shard must have
	// completed — its response is already decided.
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("in-flight shard request failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight shard answered %d, want 200", r.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard response not written after drain completed")
	}

	// New shards are refused while drained.
	resp := postJSON(t, ts.URL+"/v1/shard", `{"sweep":{"nTasks":3,"sets":2},"jobs":[0]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain shard answered %d, want 503", resp.StatusCode)
	}

	ts.Close()
	checkGoroutineCount(t, before)
}

// checkGoroutineCount allows the runtime a moment to retire exiting
// goroutines before declaring a leak.
func checkGoroutineCount(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// A shard request aborted by Shutdown's deadline is cancelled, not
// stuck: the handler returns promptly once baseCtx falls.
func TestShardCancelledByShutdownDeadline(t *testing.T) {
	s := New(Config{Logf: t.Logf, ShardTimeout: time.Hour})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/shard", "application/json",
			strings.NewReader(`{"sweep":{"nTasks":8,"sets":40,"seed":5,"horizon":40000},"jobs":[0,1,2,3,4,5,6,7,8,9]}`))
		if err != nil {
			resCh <- 0
			return
		}
		resp.Body.Close()
		resCh <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.shardCacheMisses.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// An already-expired context forces the hard-cancel path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("expired-deadline shutdown reported clean drain")
	}
	select {
	case status := <-resCh:
		// 499 is written for a cancelled shard; the exact code matters
		// less than the handler having returned.
		if status == http.StatusOK {
			t.Error("cancelled shard reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shard handler stuck after shutdown cancelled it")
	}
}
