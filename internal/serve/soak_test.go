package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtdvs/internal/sim"
	"rtdvs/internal/task"
)

// TestSoakSmoke drives a deliberately under-provisioned server with a
// few hundred concurrent requests through the backoff client: every
// request must eventually succeed (the 429 shedding paces the clients
// rather than failing them), the server must shed at least once (the
// load is far beyond its capacity), and the drain afterwards must be
// clean. The whole exercise runs under a wall-clock budget so a
// regression that deadlocks or livelocks the pool fails fast.
func TestSoakSmoke(t *testing.T) {
	const (
		simClients   = 180
		sweepClients = 24
		budget       = 60 * time.Second
	)
	before := runtime.NumGoroutine()

	// Tiny capacity relative to the offered load forces the 429 path.
	s := New(Config{SimConcurrency: 2, Workers: 2, QueueDepth: 4, RetryAfter: time.Second, Logf: t.Logf})
	s.Start()
	hs := httptest.NewServer(s.Handler())

	// Count sheds at the transport level, underneath the client's
	// retries.
	var sheds atomic.Int64
	rt := http.DefaultTransport.(*http.Transport).Clone()
	rt.MaxIdleConnsPerHost = simClients + sweepClients
	countingClient := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		resp, err := rt.RoundTrip(r)
		if err == nil && resp.StatusCode == http.StatusTooManyRequests {
			sheds.Add(1)
		}
		return resp, err
	})}

	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	// Hold every simulate slot through the first wave of arrivals so
	// shedding happens deterministically even on a machine fast enough
	// to drain each simulation before the next connection lands; the
	// retry clients absorb the 429s and succeed once the slots free up.
	s.simSem <- struct{}{}
	s.simSem <- struct{}{}
	slotHold := time.AfterFunc(300*time.Millisecond, func() { <-s.simSem; <-s.simSem })
	defer slotHold.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, simClients+sweepClients)
	for i := 0; i < simClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(hs.URL, int64(i))
			c.HTTP = countingClient
			c.MaxAttempts = 40
			c.BaseDelay = 2 * time.Millisecond
			c.MaxDelay = 50 * time.Millisecond
			// Deep enough that simulations overlap and contend for the
			// two slots; still only ~1ms of work each.
			_, err := c.Simulate(ctx, SimulateRequest{
				Tasks:   []task.Task{{Period: 8, WCET: 3}, {Period: 10, WCET: 3}},
				Policy:  "ccEDF",
				Horizon: 30000,
				Seed:    int64(i),
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	for i := 0; i < sweepClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(hs.URL, int64(1000+i))
			c.HTTP = countingClient
			c.MaxAttempts = 60
			c.BaseDelay = 2 * time.Millisecond
			c.MaxDelay = 50 * time.Millisecond
			id, err := c.StartSweep(ctx, SweepRequest{
				NTasks:       3,
				Sets:         2,
				Utilizations: []float64{0.4, 0.8},
				Seed:         int64(i),
				Horizon:      2000,
			})
			if err != nil {
				errs <- err
				return
			}
			st, err := c.WaitJob(ctx, id, 5*time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			if st.Status != JobDone {
				errs <- &StatusError{Status: 0, Body: "job " + id + " ended " + string(st.Status) + ": " + st.Error}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("soak request failed: %v", err)
	}
	if sheds.Load() == 0 {
		t.Error("no request was ever shed with 429; the load test is not exercising backpressure")
	}
	// The server's own shed counter must agree exactly with the 429s the
	// clients observed on the wire — no double counting, none missed.
	if got := s.metrics.shed.Value(); got != float64(sheds.Load()) {
		t.Errorf("server shed counter = %v, clients saw %d 429s", got, sheds.Load())
	}
	t.Logf("soak: %d requests, %d sheds absorbed by retries", simClients+sweepClients, sheds.Load())

	hs.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	rt.CloseIdleConnections()
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after soak: %d before, %d after", before, runtime.NumGoroutine())
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// FuzzSimulateRequest asserts the decode+validate path never panics and
// never lets an invalid configuration through to the simulator.
func FuzzSimulateRequest(f *testing.F) {
	seeds := []string{
		`{"tasks":[{"period":8,"wcet":3}]}`,
		`{"tasks":[{"period":8,"wcet":3},{"period":10,"wcet":3}],"policy":"laEDF","exec":"c=0.9","horizon":100}`,
		`{"tasks":[{"period":1e308,"wcet":1e308}],"horizon":1e308}`,
		`{"tasks":[{"period":8,"wcet":3}],"machineSpec":{"points":[{"freq":1,"voltage":-2}]}}`,
		`{"tasks":[{"period":8,"wcet":3}],"idleLevel":2}`,
		`{"tasks":[{"period":8,"wcet":3}],"bogus":true}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SimulateRequest
		if err := decodeStrict(data, &req); err != nil {
			return
		}
		cfg, err := req.Config()
		if err != nil {
			return
		}
		// Whatever validation accepted must simulate without panicking.
		// The deadline bounds adversarial inputs (e.g. near-infinite
		// horizons) via the cooperative cancellation path; errors are
		// acceptable, crashes are not.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		if _, err := sim.RunContext(ctx, cfg); err != nil {
			enc, _ := json.Marshal(req)
			t.Logf("request %s: %v", enc, err)
		}
	})
}

// The strict decoder itself must reject every seed that is not a clean
// JSON object.
func TestDecodeStrictRejectsNonObjects(t *testing.T) {
	for _, bad := range []string{`[]`, `"x"`, `1`, `{} {}`, `{"tasks":[]} null`} {
		var req SimulateRequest
		if err := decodeStrict([]byte(bad), &req); err == nil && strings.TrimSpace(bad) != "{}" {
			// Arrays/scalars fail to unmarshal into a struct; doubled
			// objects trip the trailing-data check.
			t.Errorf("decodeStrict(%q) accepted", bad)
		}
	}
}
