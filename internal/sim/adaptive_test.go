package sim

import (
	"math/rand"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fault"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

func mustExtended(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.ExtendedByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// overloadWorkload is sized so a sustained overload (1.6× every WCET)
// still fits at f_max: declared U = 0.45, overloaded demand 0.72. A
// policy that tracks the *observed* load can therefore meet nearly all
// deadlines; one that trusts the declared parameters runs too slow and
// misses persistently.
func overloadWorkload() *task.Set {
	return task.MustSet(
		task.Task{Name: "T1", Period: 10, WCET: 1.5},
		task.Task{Name: "T2", Period: 20, WCET: 3},
		task.Task{Name: "T3", Period: 40, WCET: 6},
	)
}

// The PR's pinned robustness criterion: under a sustained-overload fault
// regime, fbEDF's feedback loop drives the miss rate back to its
// setpoint (within 1.5×), while the lookahead policy — which optimizes
// against the declared WCETs the regime is violating — blows straight
// through that bound. Seeds and workload are fixed; a behavior change in
// either policy or the overload chain shows up here.
func TestSustainedOverloadFeedbackHoldsSetpoint(t *testing.T) {
	run := func(name string) (missRate float64, releases int) {
		t.Helper()
		res := mustRun(t, Config{
			Tasks:   overloadWorkload(),
			Machine: machine.Machine0(),
			Policy:  mustExtended(t, name),
			Faults:  fault.MustNew(fault.SustainedOverload(11)),
			Horizon: 5000,
		})
		if res.Releases == 0 {
			t.Fatalf("%s: no releases", name)
		}
		return float64(res.MissCount()) / float64(res.Releases), res.Releases
	}

	fb, _ := run("fbEDF")
	la, rel := run("laEDF")

	p := mustExtended(t, "fbEDF")
	bound := 1.5 * p.(interface{ Setpoint() float64 }).Setpoint()
	t.Logf("releases=%d fbEDF miss rate=%.4f laEDF miss rate=%.4f bound=%.4f", rel, fb, la, bound)
	if fb > bound {
		t.Errorf("fbEDF steady-state miss rate %.4f exceeds 1.5× setpoint (%.4f)", fb, bound)
	}
	if la <= bound {
		t.Errorf("laEDF miss rate %.4f unexpectedly within the feedback bound %.4f — the overload regime no longer discriminates", la, bound)
	}
}

// Fault-free, the adaptive extension policies must respect the paper's
// energy ordering: bound ≤ policy ≤ staticEDF ≤ none, sweep-averaged
// over seeded task sets. fbEDF additionally must not miss a deadline
// when nothing is overrunning (it is not *guaranteed*, but with zero
// control error its feedforward term alone schedules the declared load).
func TestAdaptiveFaultFreeOrdering(t *testing.T) {
	utils := conformanceUtils()
	for _, name := range []string{"fbEDF", "stSelect"} {
		var runner Runner
		for ui, u := range utils {
			var polSum, noneSum, staticSum float64
			misses := 0
			for si := 0; si < 8; si++ {
				caseSeed := int64(4242) + int64(ui)*1_000_003 + int64(si)*7919
				g := task.Generator{N: 6, Utilization: u, Rand: rand.New(rand.NewSource(caseSeed))}
				ts, err := g.Generate()
				if err != nil {
					t.Fatal(err)
				}
				horizon := 10 * ts.MaxPeriod()
				if horizon > 4000 {
					horizon = 4000
				}
				for _, pn := range []string{name, "staticEDF", "none"} {
					res, err := runner.Run(Config{
						Tasks:   ts,
						Machine: machine.Machine0(),
						Policy:  mustExtended(t, pn),
						Horizon: horizon,
					})
					if err != nil {
						t.Fatal(err)
					}
					switch pn {
					case name:
						polSum += res.TotalEnergy
						misses += res.MissCount()
					case "staticEDF":
						staticSum += res.TotalEnergy
					case "none":
						noneSum += res.TotalEnergy
					}
				}
			}
			const eps = 1e-9
			t.Logf("%s u=%.2f: policy=%.4f staticEDF=%.4f none=%.4f (normalized)",
				name, u, polSum/noneSum, staticSum/noneSum, 1.0)
			if polSum > staticSum+eps {
				t.Errorf("%s u=%.2f: energy %.4f above staticEDF %.4f", name, u, polSum/noneSum, staticSum/noneSum)
			}
			if staticSum > noneSum+eps {
				t.Errorf("u=%.2f: staticEDF energy above none", u)
			}
			if misses != 0 {
				t.Errorf("%s u=%.2f: %d fault-free deadline misses", name, u, misses)
			}
		}
	}
}

// stSelect with a real distribution model must plan below worst case and
// still save energy versus staticEDF when execution times actually track
// the model; the per-task budgets only ever escalate to WCET, so the EDF
// guarantee survives and fault-free runs stay miss-free.
func TestStochasticSelectModelSavesEnergy(t *testing.T) {
	// U = 0.9 so staticEDF must run at f_max; the budget plan drops well
	// below it. (At low utilizations both policies hit the machine's
	// frequency floor and the comparison degenerates.)
	ts := task.MustSet(
		task.Task{Name: "T1", Period: 10, WCET: 3},
		task.Task{Name: "T2", Period: 20, WCET: 6},
		task.Task{Name: "T3", Period: 40, WCET: 12},
	)
	exec := task.DistExec{D: task.Beta{A: 2, B: 6}, Seed: 5} // mean 0.25 of WCET

	run := func(p core.Policy) *Result {
		return mustRun(t, Config{
			Tasks:   ts,
			Machine: machine.Machine0(),
			Policy:  p,
			Exec:    exec,
			Horizon: 4000,
		})
	}
	st := run(mustExtended(t, "stSelect"))
	se := run(mustExtended(t, "staticEDF"))
	if st.MissCount() != 0 {
		t.Fatalf("stSelect missed %d deadlines on in-model workload", st.MissCount())
	}
	if st.TotalEnergy >= se.TotalEnergy {
		t.Errorf("stSelect energy %.4g not below staticEDF %.4g with a light execution model",
			st.TotalEnergy, se.TotalEnergy)
	}
}

// Scalar/batch parity for the adaptive policies, fault-free and under
// the overload regime: the batch substrate must wire distributions and
// thread the new policies identically to the scalar runner.
func TestBatchMatchesScalarAdaptivePolicies(t *testing.T) {
	dexec := task.DistExec{D: task.Beta{A: 2, B: 6}, Seed: 5}
	mks := []func() Config{
		func() Config {
			return Config{
				Tasks:   overloadWorkload(),
				Machine: machine.Machine0(),
				Policy:  mustExtended(t, "fbEDF"),
				Horizon: 2000,
			}
		},
		func() Config {
			return Config{
				Tasks:   overloadWorkload(),
				Machine: machine.Machine0(),
				Policy:  mustExtended(t, "fbEDF"),
				Faults:  fault.MustNew(fault.SustainedOverload(11)),
				Horizon: 2000,
			}
		},
		func() Config {
			return Config{
				Tasks:   overloadWorkload(),
				Machine: machine.Machine1(),
				Policy:  mustExtended(t, "stSelect"),
				Exec:    dexec,
				Horizon: 2000,
			}
		},
		func() Config {
			return Config{
				Tasks:   overloadWorkload(),
				Machine: machine.Machine0(),
				Policy:  mustExtended(t, "stSelect+contain"),
				Exec:    dexec,
				Faults:  fault.MustNew(fault.Burst(23)),
				Horizon: 2000,
			}
		},
		func() Config {
			return Config{
				Tasks:   overloadWorkload(),
				Machine: machine.Machine0(),
				Policy:  mustExtended(t, "fbEDF+contain"),
				Faults:  fault.MustNew(fault.Burst(23)),
				Horizon: 2000,
			}
		},
	}
	br := NewBatchRunner()
	cfgs := make([]Config, len(mks))
	for i, mk := range mks {
		cfgs[i] = mk()
	}
	results, errs := br.Run(cfgs)
	for i, mk := range mks {
		want, wantErr := Run(mk())
		requireSameAsScalar(t, cfgs[i].Policy.Name(), results[i], errs[i], want, wantErr)
	}
}
