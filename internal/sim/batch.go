package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
)

// batchMaxSlots bounds the size of a lane's precomputed release table:
// one hyperperiod of a harmonic task set may contain at most this many
// release instants before the lane falls back to the timer-heap path.
// The cap keeps table construction O(small) and the table itself
// cache-resident; real harmonic (frame-based) sets are far below it.
const batchMaxSlots = 4096

// relSlot is one entry of the release-table build scratch: a release
// instant within the hyperperiod and the set of tasks (as a bitmask)
// released at it.
type relSlot struct {
	t    float64
	bits uint64
}

// cmpRelSlot orders build-scratch slots by time. Ties may land in any
// order: coincident slots are OR-merged immediately after the sort.
func cmpRelSlot(a, b relSlot) int {
	switch {
	case a.t < b.t:
		return -1
	case a.t > b.t:
		return 1
	}
	return 0
}

// BatchRunner advances K independent simulations in lockstep: all lane
// state lives in flattened, lane-strided storage (sched.LaneHeaps for
// the per-lane timer and ready queues, one backing slice each for task
// states and point residency), and a shared cross-lane selector always
// steps the lane whose simulated clock is globally earliest. Per-lane
// results are bit-identical to running each configuration on a scalar
// Runner: the lane event loop is a faithful transcription of the scalar
// one, so every float is accumulated in the same order.
//
// Two specializations make the lockstep loop cheaper than K scalar
// loops. Lanes without fault injection or trace recording run a reduced
// loop with the fault branches, context polls, and non-inlined
// math.Min/Max calls compiled out. Lanes whose task set is harmonic
// (task.Set.Hyperperiod, exactly integral periods and phases) replace
// the release timer heap with a precomputed per-hyperperiod release
// table: periodic releases become a cursor walk over (time, task-bitmask)
// slots instead of O(log n) heap churn per task per period. Release
// times on an integral grid are exact float64 integers, so the table
// reproduces the scalar heap's times bit-for-bit.
//
// Lanes that do configure Faults or a Recorder are executed on embedded
// scalar Runners (one per such lane, retained across batches), keeping
// the full configuration space available at scalar cost.
//
// Like Runner, a BatchRunner reuses every internal buffer, so
// steady-state batches perform no allocation; the returned Results alias
// those buffers and are valid until the next Run call. Not safe for
// concurrent use. Each lane must bring its OWN Policy instance (lanes
// interleave, so a shared instance would corrupt both lanes' state —
// shared instances are rejected) and, when the exec model is stateful,
// its own ExecModel.
type BatchRunner struct {
	lanes   []lane
	results []*Result
	errs    []error

	// timers and ready are the lane-strided heap storage: lane l's
	// release timer queue and EDF/RM run queue.
	timers sched.LaneHeaps
	ready  sched.LaneHeaps

	// sel is the cross-lane next-event selector: lanes keyed by their
	// simulated clock, ties by lane index, so Peek is always the
	// globally-earliest lane.
	sel sched.ReadyQueue

	// states and resTime are the lane-strided per-task state and
	// per-point residency backing slices; each lane holds a sub-slice.
	states  []taskState
	resTime []float64

	due      []int     // scratch: timer-heap lanes' release drain
	released []int     // scratch: release events pending policy callbacks
	slots    []relSlot // scratch: release-table construction

	fallback []*Runner           // scalar runners for fault/recorder lanes
	seen     map[core.Policy]int // duplicate policy-instance detection

	// mb is the multi-core expansion state of RunMulti (multibatch.go).
	mb multiBatch
}

// NewBatchRunner returns an empty BatchRunner; buffers grow on first use.
func NewBatchRunner() *BatchRunner { return &BatchRunner{} }

// RunBatch executes the configurations on a fresh BatchRunner (see
// BatchRunner.Run).
func RunBatch(cfgs []Config) ([]*Result, []error) {
	return NewBatchRunner().Run(cfgs)
}

// Run executes every configuration and returns parallel slices of
// per-lane results and errors: results[i] is non-nil exactly when
// errs[i] is nil. The results (and the slices themselves) alias the
// BatchRunner's buffers and are valid until the next Run call; use
// Result.Clone to retain one.
func (b *BatchRunner) Run(cfgs []Config) ([]*Result, []error) {
	return b.run(nil, cfgs)
}

// RunContext is Run with cooperative cancellation: the lockstep loop
// polls ctx every cancelCheckInterval steps, and when the context ends
// early every unfinished lane reports a *Canceled error carrying its
// partial result, exactly like Runner.RunContext. Finished lanes keep
// their completed results.
func (b *BatchRunner) RunContext(ctx context.Context, cfgs []Config) ([]*Result, []error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	return b.run(ctx, cfgs)
}

// lane is one simulation of a batch. Its event-loop methods are a
// transcription of the scalar simulator's, specialized to the fault-free
// no-recorder configuration; heavy per-lane state (task states, heaps,
// residency) lives in the BatchRunner's lane-strided storage. lane
// implements core.System and sched.TaskView for the policy callbacks.
type lane struct {
	b   *BatchRunner
	idx int

	cfg    Config
	ts     *task.Set
	states []taskState // view into BatchRunner.states
	now    float64
	kind   sched.Kind
	res    Result

	inv      *laneInvariant
	invStore laneInvariant

	hw      machine.OperatingPoint
	hwIdx   int
	sel     machine.PointSelector
	resTime []float64 // view into BatchRunner.resTime

	lastRun int
	ctxErr  error

	// Cached policy facets, constant after Attach: the utilization
	// reporter assertion and the admission verdict, so the per-event
	// invariant checks skip the interface machinery the scalar checker
	// pays.
	ur         UtilizationReporter
	guaranteed bool

	// cachedOp/cachedIdx memoize the last PointSelector.Index lookup —
	// a pure function, so the cache is exact. The idle path would
	// otherwise pay a linear table scan per idle event.
	cachedOp   machine.OperatingPoint
	cachedIdx  int
	cacheValid bool

	// Harmonic release table: when harmonic is true the lane never
	// touches the timer heap — slotTime/slotBits list every release
	// instant of one hyperperiod, and (epochBase, cursor) locate the
	// next pending slot. tabNext caches its absolute time.
	harmonic  bool
	slotTime  []float64
	slotBits  []uint64
	hyper     float64
	epochBase float64
	cursor    int
	tabNext   float64

	// Single-frame fast path: when every task shares one period and one
	// phase, all simultaneously active jobs carry the same ready key
	// (equal deadlines under EDF, equal periods under RM), so the heap's
	// key-then-index order degenerates to plain task-index order. The
	// ready set is then a bitmask — insert/remove are single bit ops and
	// peek is TrailingZeros64 — with order provably identical to the
	// heap's. frame implies harmonic, so n ≤ 64 is already guaranteed.
	frame     bool
	readyBits uint64

	// quantum is the span of simulated time the lane advances per
	// selector turn. Turn granularity only shapes the interleaving of
	// independent lanes — per-lane results are identical at any quantum —
	// so it is chosen for locality: one turn covers enough consecutive
	// events to keep the lane's working set hot, and the cross-lane
	// selector is consulted once per turn instead of once per event.
	quantum float64

	fallback bool
	done     bool
}

// --- core.System / sched.TaskView ---

func (ln *lane) Now() float64 { return ln.now }

func (ln *lane) Deadline(i int) float64 {
	st := &ln.states[i]
	if st.active {
		return st.deadline
	}
	return st.nominalRel
}

func (ln *lane) NumTasks() int        { return ln.ts.Len() }
func (ln *lane) Task(i int) task.Task { return ln.ts.Task(i) }
func (ln *lane) Ready(i int) bool     { return ln.states[i].active }

// --- batch orchestration ---

// run validates and classifies every lane, executes fault/recorder lanes
// on scalar Runners, and advances the remaining lanes in lockstep.
func (b *BatchRunner) run(ctx context.Context, cfgs []Config) ([]*Result, []error) {
	k := len(cfgs)
	b.results = growZeroed(b.results, k)
	b.errs = growZeroed(b.errs, k)
	if k == 0 {
		return b.results, b.errs
	}
	if cap(b.lanes) >= k {
		b.lanes = b.lanes[:k]
	} else {
		grown := make([]lane, k)
		copy(grown, b.lanes)
		b.lanes = grown
	}
	if b.seen == nil {
		b.seen = make(map[core.Policy]int, k)
	} else {
		clear(b.seen)
	}

	// Pass 1: validate each configuration (mirroring Runner.run), apply
	// defaults, classify the lane, and size the shared storage.
	maxN, maxSel := 1, 1
	for l := range cfgs {
		cfg, err := b.validateLane(l, cfgs[l])
		if err != nil {
			b.errs[l] = err
			b.lanes[l].done = true
			continue
		}
		ln := &b.lanes[l]
		ln.cfg = cfg
		ln.done = false
		ln.fallback = cfg.Faults != nil || cfg.Recorder != nil
		if n := cfg.Tasks.Len(); n > maxN {
			maxN = n
		}
		if pl := cfg.Machine.Selector().Len(); pl > maxSel {
			maxSel = pl
		}
	}

	b.states = growZeroed(b.states, k*maxN)
	b.resTime = growZeroed(b.resTime, k*maxSel)
	b.timers.Reset(k, maxN)
	b.ready.Reset(k, maxN)
	b.sel.Reset(k)

	// Pass 2: wire fast lanes into the shared storage; run fallback
	// lanes to completion on their scalar Runners.
	nfall := 0
	for l := range b.lanes {
		ln := &b.lanes[l]
		if ln.done {
			continue
		}
		if ln.fallback {
			r := b.fallbackRunner(nfall)
			nfall++
			b.results[l], b.errs[l] = r.RunContext(ctx, ln.cfg)
			ln.done = true
			continue
		}
		b.setupLane(l, maxN, maxSel)
		if err := b.sel.Push(l, 0); err != nil {
			panic(err) // lane indexes are unique by construction
		}
	}

	// Lockstep at quantum granularity: each turn picks the globally
	// earliest lane and advances it through one quantum of simulated
	// time before re-keying it with its new clock (or retiring it once
	// it crosses its horizon). Lanes are independent, so the selector
	// only decides interleaving — per-lane results are bit-identical at
	// any turn size — and the coarser turns keep each lane's working
	// set cache-resident across a run of consecutive events instead of
	// thrashing K lanes through the selector per event.
	tick := 0
turns:
	for b.sel.Len() > 0 {
		l := b.sel.Peek()
		ln := &b.lanes[l]
		limit := ln.now + ln.quantum
		for {
			if ctx != nil {
				if tick--; tick <= 0 {
					tick = cancelCheckInterval
					if err := ctx.Err(); err != nil {
						break turns
					}
				}
			}
			if !ln.step() {
				b.sel.Pop()
				b.results[l], b.errs[l] = ln.finish()
				ln.done = true
				continue turns
			}
			if ln.now >= limit {
				b.sel.Update(l, ln.now)
				continue turns
			}
		}
	}
	// Context ended: every lane still in the selector stops where it is
	// and reports a partial result, like a cancelled scalar run.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			//rtdvs:ignore ctxpoll post-cancellation drain: no lane steps again, one finish per remaining lane
			for b.sel.Len() > 0 {
				l := b.sel.Pop()
				ln := &b.lanes[l]
				ln.ctxErr = err
				b.results[l], b.errs[l] = ln.finish()
				ln.done = true
			}
		}
	}
	return b.results, b.errs
}

// validateLane mirrors the scalar Runner's configuration validation and
// defaulting, plus the batch-specific requirement that no two lanes
// share a Policy instance (lanes interleave; Attach-time reset cannot
// protect concurrent lanes the way it protects sequential runs).
func (b *BatchRunner) validateLane(l int, cfg Config) (Config, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return cfg, task.ErrEmptySet
	}
	if cfg.Machine == nil {
		return cfg, fmt.Errorf("sim: nil machine spec")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return cfg, err
	}
	if cfg.Policy == nil {
		return cfg, fmt.Errorf("sim: nil policy")
	}
	if prev, dup := b.seen[cfg.Policy]; dup {
		return cfg, fmt.Errorf("sim: batch lanes %d and %d share a Policy instance; every lane needs its own", prev, l)
	}
	b.seen[cfg.Policy] = l
	if cfg.Exec == nil {
		cfg.Exec = task.FullWCET{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 20 * cfg.Tasks.MaxPeriod()
	}
	wireDistributions(cfg.Policy, cfg.Exec)
	if err := cfg.Policy.Attach(cfg.Tasks, cfg.Machine); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// fallbackRunner returns the i-th scalar Runner of the fallback pool,
// growing the pool on first use and retaining it across batches so
// repeated batches with fault/recorder lanes stay allocation-free too.
func (b *BatchRunner) fallbackRunner(i int) *Runner {
	for len(b.fallback) <= i {
		b.fallback = append(b.fallback, NewRunner())
	}
	return b.fallback[i]
}

// setupLane initializes a fast lane exactly the way Runner.run
// initializes the scalar simulator, then picks the release mechanism.
func (b *BatchRunner) setupLane(l, maxN, maxSel int) {
	ln := &b.lanes[l]
	cfg := ln.cfg
	n := cfg.Tasks.Len()
	ln.b = b
	ln.idx = l
	ln.ts = cfg.Tasks
	ln.now = 0
	ln.kind = cfg.Policy.Scheduler()
	ln.sel = cfg.Machine.Selector()
	ln.states = b.states[l*maxN : l*maxN+n]
	ln.resTime = b.resTime[l*maxSel : l*maxSel+ln.sel.Len()]
	ln.lastRun = -1
	ln.ctxErr = nil
	ln.cacheValid = false

	prt := ln.res.PointResTime
	if prt == nil {
		prt = make(map[machine.OperatingPoint]float64, ln.sel.Len())
	} else {
		clear(prt)
	}
	ln.res = Result{
		Policy:       cfg.Policy.Name(),
		Horizon:      cfg.Horizon,
		Guaranteed:   cfg.Policy.Guaranteed(),
		Misses:       ln.res.Misses[:0],
		PerTask:      growZeroed(ln.res.PerTask, n),
		PointResTime: prt,
	}

	ln.harmonic = b.buildReleaseTable(ln)
	t0 := cfg.Tasks.Task(0)
	ln.frame = ln.harmonic
	ln.readyBits = 0
	maxPeriod := 0.0
	for i := range ln.states {
		t := cfg.Tasks.Task(i)
		ln.states[i] = taskState{nextRelease: t.Phase, nominalRel: t.Phase, deadline: t.Phase}
		if !ln.harmonic {
			ln.timerAdd(i, t.Phase)
		}
		//rtdvs:ignore floatcmp exact equality is the gate: the frame fast path requires identical periods and phases, not nearly equal ones
		if t.Period != t0.Period || t.Phase != t0.Phase {
			ln.frame = false
		}
		if t.Period > maxPeriod {
			maxPeriod = t.Period
		}
	}
	ln.quantum = maxPeriod
	if ln.harmonic && ln.hyper > ln.quantum {
		ln.quantum = ln.hyper
	}
	if q := cfg.Horizon / 32; q > ln.quantum {
		ln.quantum = q
	}

	if cfg.CheckInvariants || testing.Testing() {
		ln.invStore = laneInvariant{ln: ln}
		ln.inv = &ln.invStore
	} else {
		ln.inv = nil
	}
	ln.ur, _ = cfg.Policy.(UtilizationReporter)
	ln.guaranteed = cfg.Policy.Guaranteed()
	ln.hw = cfg.Policy.Point()
	ln.hwIdx = ln.sel.Index(ln.hw)
	ln.inv.checkPoint(ln.hw)
	ln.inv.checkUtilization()
}

// buildReleaseTable precomputes one hyperperiod of release instants for
// a harmonic lane, reporting whether the lane qualifies. Qualification
// is strict so the table is bit-exact against the scalar timer heap:
// every period and phase must be an exact float64 integer (the scalar
// engine accumulates release times by repeated addition, which is exact
// on the integer grid below 2^53 — the same integers the table
// produces), phases must precede the first period so the [0,H) slot
// pattern repeats verbatim every hyperperiod, the task count must fit
// the 64-bit due-bitmask, and the horizon must keep absolute slot times
// on the exact grid.
func (b *BatchRunner) buildReleaseTable(ln *lane) bool {
	ts := ln.ts
	n := ts.Len()
	if n > 64 {
		return false
	}
	h, ok := ts.Hyperperiod()
	if !ok {
		return false
	}
	if !(ln.cfg.Horizon+2*h < float64(int64(1)<<53)) {
		return false
	}
	total := 0
	for i := 0; i < n; i++ {
		t := ts.Task(i)
		//rtdvs:ignore floatcmp exact integrality is the gate: the release table is only valid on an exact integer grid
		if t.Period != math.Trunc(t.Period) || t.Phase != math.Trunc(t.Phase) ||
			t.Phase < 0 || t.Phase >= t.Period {
			return false
		}
		total += int(h / t.Period)
	}
	if total > batchMaxSlots {
		return false
	}

	b.slots = b.slots[:0]
	for i := 0; i < n; i++ {
		t := ts.Task(i)
		bit := uint64(1) << uint(i)
		for at := t.Phase; at < h; at += t.Period {
			b.slots = append(b.slots, relSlot{t: at, bits: bit})
		}
	}
	slices.SortFunc(b.slots, cmpRelSlot)
	out := 0
	for _, s := range b.slots {
		//rtdvs:ignore floatcmp slot times sit on the exact integer grid the table gate enforces; coincident means bit-equal
		if out > 0 && b.slots[out-1].t == s.t {
			b.slots[out-1].bits |= s.bits
		} else {
			b.slots[out] = s
			out++
		}
	}
	ln.slotTime = growZeroed(ln.slotTime, out)
	ln.slotBits = growZeroed(ln.slotBits, out)
	for j := 0; j < out; j++ {
		ln.slotTime[j] = b.slots[j].t
		ln.slotBits[j] = b.slots[j].bits
	}
	ln.hyper = h
	ln.epochBase = 0
	ln.cursor = 0
	ln.tabNext = ln.slotTime[0]
	return true
}

// --- lane event loop (transcribed from the scalar simulator) ---

// timerAdd enqueues task i's next release on the lane's timer heap
// (timer-heap lanes only).
//
//rtdvs:hotpath
func (ln *lane) timerAdd(i int, at float64) {
	if err := ln.b.timers.Push(ln.idx, i, at); err != nil {
		panic(err)
	}
}

// readyKey returns task i's run-queue priority — identical to the
// scalar simulator's readyKey.
//
//rtdvs:hotpath
func (ln *lane) readyKey(i int) float64 {
	if ln.kind == sched.RM {
		return ln.ts.Task(i).Period
	}
	return ln.states[i].deadline
}

// readyAdd enqueues a newly activated task: a bit set for single-frame
// lanes, a heap push otherwise.
//
//rtdvs:hotpath
func (ln *lane) readyAdd(i int) {
	if ln.frame {
		ln.readyBits |= 1 << uint(i)
		return
	}
	if err := ln.b.ready.Push(ln.idx, i, ln.readyKey(i)); err != nil {
		panic(err)
	}
}

// readyPeek returns the highest-priority active task, or -1 when idle.
// For single-frame lanes the lowest set bit IS the heap's answer: all
// active keys are equal, and the heap breaks ties by task index.
//
//rtdvs:hotpath
func (ln *lane) readyPeek() int {
	if ln.frame {
		if ln.readyBits == 0 {
			return -1
		}
		return bits.TrailingZeros64(ln.readyBits)
	}
	return ln.b.ready.Peek(ln.idx)
}

// readyRemove drops a completed or deadline-missed task from the ready
// set.
//
//rtdvs:hotpath
func (ln *lane) readyRemove(i int) {
	if ln.frame {
		ln.readyBits &^= 1 << uint(i)
		return
	}
	ln.b.ready.Remove(ln.idx, i)
}

// nextReleaseTime returns the lane's earliest pending release: the
// release-table cursor for harmonic lanes, the timer heap otherwise.
//
//rtdvs:hotpath
func (ln *lane) nextReleaseTime() float64 {
	if ln.harmonic {
		return ln.tabNext
	}
	return ln.b.timers.PeekKey(ln.idx)
}

// selIndex returns op's machine-table index through the lane's one-entry
// memo. PointSelector.Index is a pure linear scan, so memoizing the last
// lookup is exact and removes the scan from the per-event idle path.
//
//rtdvs:hotpath
func (ln *lane) selIndex(op machine.OperatingPoint) int {
	if ln.cacheValid && op == ln.cachedOp {
		return ln.cachedIdx
	}
	ln.cachedOp = op
	ln.cachedIdx = ln.sel.Index(op)
	ln.cacheValid = true
	return ln.cachedIdx
}

// fireReleases fires every due release of task i — the per-task inner
// loop of the scalar processReleases, minus the fault hooks fast lanes
// never configure.
//
//rtdvs:hotpath
func (ln *lane) fireReleases(i int) {
	st := &ln.states[i]
	for fpx.Le(st.nextRelease, ln.now) {
		if st.active {
			ln.res.Misses = append(ln.res.Misses, Miss{
				Task: i, Inv: st.inv - 1, Deadline: st.deadline, Remaining: st.remaining,
			})
			ln.res.PerTask[i].Misses++
			ln.inv.checkMiss(i, st.inv-1, st.deadline)
			st.active = false
			ln.readyRemove(i)
			if ln.lastRun == i {
				ln.lastRun = -1 // aborted, not preempted
			}
		}
		actual := st.nextRelease
		rel := st.nominalRel
		p := ln.ts.Task(i)
		wcet := p.WCET
		c := ln.cfg.Exec.Cycles(i, st.inv, wcet)
		if c > wcet {
			c = wcet
		}
		if c <= 0 {
			c = math.SmallestNonzeroFloat64
		}
		st.remaining = c
		st.used = 0
		st.overNotified = false
		st.releasedAt = actual
		st.deadline = rel + p.Period
		st.nominalRel = rel + p.Period
		st.nextRelease = st.nominalRel
		st.active = true
		st.inv++
		ln.res.Releases++
		ln.res.PerTask[i].Releases++
		ln.readyAdd(i)
		ln.b.released = append(ln.b.released, i)
	}
}

// processReleasesHeap is the scalar processReleases on the lane's slice
// of the lane-strided timer heap.
//
//rtdvs:hotpath
func (ln *lane) processReleasesHeap() {
	b := ln.b
	if !fpx.Le(b.timers.PeekKey(ln.idx), ln.now) {
		return
	}
	b.due = b.due[:0]
	for fpx.Le(b.timers.PeekKey(ln.idx), ln.now) {
		b.due = append(b.due, b.timers.Pop(ln.idx))
	}
	sortIndexes(b.due)
	b.released = b.released[:0]
	for _, i := range b.due {
		ln.fireReleases(i)
		ln.timerAdd(i, ln.states[i].nextRelease)
	}
	for _, i := range b.released {
		ln.cfg.Policy.OnRelease(ln, i)
	}
	if len(b.released) > 0 {
		ln.inv.checkUtilization()
	}
}

// processReleasesTable drains the release table instead of a timer heap:
// every slot at or before now contributes its task bitmask, and the due
// tasks replay in ascending index order via the bit scan — the same
// event order the heap drain plus index sort produces. Slot times and
// the per-task accumulated release times are the same exact integers,
// so the fpx comparisons agree bit-for-bit with the heap path.
//
//rtdvs:hotpath
func (ln *lane) processReleasesTable() {
	if !fpx.Le(ln.tabNext, ln.now) {
		return
	}
	due := uint64(0)
	for fpx.Le(ln.tabNext, ln.now) {
		due |= ln.slotBits[ln.cursor]
		ln.cursor++
		if ln.cursor == len(ln.slotTime) {
			ln.cursor = 0
			ln.epochBase += ln.hyper
		}
		ln.tabNext = ln.epochBase + ln.slotTime[ln.cursor]
	}
	b := ln.b
	b.released = b.released[:0]
	for due != 0 {
		i := bits.TrailingZeros64(due)
		due &= due - 1
		ln.fireReleases(i)
	}
	for _, i := range b.released {
		ln.cfg.Policy.OnRelease(ln, i)
	}
	if len(b.released) > 0 {
		ln.inv.checkUtilization()
	}
}

// switchTo is the scalar switchTo minus the fault hooks, with the
// memoized point-index lookup.
//
//rtdvs:hotpath
func (ln *lane) switchTo(op machine.OperatingPoint) {
	if op == ln.hw {
		return
	}
	var halt float64
	if ln.cfg.Overhead != nil {
		halt = ln.cfg.Overhead.Halt(ln.hw, op)
	}
	idx := ln.selIndex(op)
	ln.res.Switches++
	if halt > 0 {
		end := ln.now + halt
		if ln.cfg.Horizon < end {
			end = ln.cfg.Horizon
		}
		ln.record(ln.now, end, op, idx)
		ln.res.HaltTime += end - ln.now
		ln.now = end
	}
	ln.hw, ln.hwIdx = op, idx
	ln.inv.checkPoint(op)
}

// record accounts an execution/idle segment's point residency. Fast
// lanes have no Recorder, so only the dense residency array (or the
// foreign-point fallback map) is touched.
//
//rtdvs:hotpath
func (ln *lane) record(start, end float64, op machine.OperatingPoint, opIdx int) {
	if opIdx >= 0 {
		ln.resTime[opIdx] += end - start
	} else {
		ln.res.PointResTime[op] += end - start
	}
}

// step advances the lane by one event-loop iteration — the body of the
// scalar run loop, transcribed with the fault branches and context polls
// removed and math.Min/Max replaced by branches (exact for the
// non-negative finite operands involved). It reports false once the
// lane has crossed its horizon.
//
//rtdvs:hotpath
func (ln *lane) step() bool {
	if !fpx.Lt(ln.now, ln.cfg.Horizon) {
		return false
	}
	ln.res.Events++
	if ln.harmonic {
		ln.processReleasesTable()
	} else {
		ln.processReleasesHeap()
	}

	nextRel := ln.nextReleaseTime()
	if ln.cfg.Horizon < nextRel {
		nextRel = ln.cfg.Horizon
	}
	pick := ln.readyPeek()

	if pick < 0 {
		// Idle until the next release at the policy's idle point.
		op := ln.cfg.Policy.IdlePoint()
		ln.switchTo(op)
		start := ln.now
		end := nextRel
		if start > end {
			end = start
		}
		if end > start {
			dur := end - start
			e := ln.cfg.Machine.IdlePower(op) * dur
			ln.res.IdleEnergy += e
			ln.res.IdleTime += dur
			ln.record(start, end, op, ln.selIndex(op))
			ln.now = end
			ln.inv.checkEnergy()
		} else {
			ln.now = nextRel
		}
		return true
	}

	op := ln.cfg.Policy.Point()
	ln.switchTo(op)
	if fpx.Ge(ln.now, ln.cfg.Horizon) {
		return false
	}
	if fpx.Le(ln.nextReleaseTime(), ln.now) {
		// A release became due during the stop interval; process it
		// (and let the policy react) before execution resumes.
		return true
	}
	nextRel = ln.nextReleaseTime()
	if ln.cfg.Horizon < nextRel {
		nextRel = ln.cfg.Horizon
	}

	if ln.lastRun >= 0 && ln.lastRun != pick && ln.states[ln.lastRun].active {
		ln.res.Preemptions++
	}
	ln.lastRun = pick

	st := &ln.states[pick]
	finish := ln.now + st.remaining/ln.hw.Freq
	end := finish
	if nextRel < end {
		end = nextRel
	}
	dur := end - ln.now
	cycles := dur * ln.hw.Freq
	if cycles > st.remaining || fpx.Le(finish, end) {
		cycles = st.remaining
	}
	st.remaining -= cycles
	st.used += cycles
	ln.res.CyclesDone += cycles
	ln.res.PerTask[pick].Cycles += cycles
	ln.res.ExecEnergy += cycles * ln.hw.EnergyPerCycle()
	ln.res.BusyTime += dur
	ln.record(ln.now, end, ln.hw, ln.hwIdx)
	ln.now = end
	ln.inv.checkEnergy()
	ln.cfg.Policy.OnExecute(pick, cycles)

	if fpx.Le(st.remaining, 0) {
		st.remaining = 0
		st.active = false
		ln.readyRemove(pick)
		ln.res.Completions++
		ln.res.PerTask[pick].Completions++
		if resp := ln.now - st.releasedAt; resp > ln.res.PerTask[pick].MaxResponse {
			ln.res.PerTask[pick].MaxResponse = resp
		}
		ln.lastRun = -1
		ln.cfg.Policy.OnCompletion(ln, pick, st.used)
		ln.inv.checkUtilization()
	}
	return true
}

// finish closes out a lane the way Runner.run closes out a scalar run:
// final energy total and check, invariant verdict, residency fold,
// cancellation, then metrics observation on success.
func (ln *lane) finish() (*Result, error) {
	ln.res.TotalEnergy = ln.res.ExecEnergy + ln.res.IdleEnergy
	ln.inv.checkEnergy()
	if err := ln.inv.Err(); err != nil {
		return nil, err
	}
	for i, d := range ln.resTime {
		if d > 0 {
			ln.res.PointResTime[ln.cfg.Machine.Points[i]] += d
		}
	}
	if ln.ctxErr != nil {
		return nil, &Canceled{At: ln.now, Partial: &ln.res, Cause: ln.ctxErr}
	}
	if ln.cfg.Metrics != nil {
		ln.cfg.Metrics.observe(&ln.res, ln.resTime, ln.cfg.Machine)
	}
	return &ln.res, nil
}

// laneInvariant is the batch counterpart of invariantChecker: identical
// checks and messages, with the utilization-reporter assertion and the
// admission verdict read from the lane's attach-time cache instead of
// re-derived per call. Fast lanes never configure fault injection, so
// the fault-provenance stand-down is vacuously absent.
type laneInvariant struct {
	ln        *lane
	lastTotal float64
	err       error
}

// Err returns the first recorded violation, if any.
func (c *laneInvariant) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

func (c *laneInvariant) failf(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf("sim: invariant violated at t=%g: %s",
			c.ln.now, fmt.Sprintf(format, args...))
	}
}

func (c *laneInvariant) checkPoint(op machine.OperatingPoint) {
	if c == nil || c.err != nil {
		return
	}
	for _, p := range c.ln.cfg.Machine.Points {
		if p == op {
			return
		}
	}
	c.failf("policy %s selected operating point (f=%g, V=%g), which is not "+
		"one of the machine's discrete points",
		c.ln.cfg.Policy.Name(), op.Freq, op.Voltage)
}

func (c *laneInvariant) checkEnergy() {
	if c == nil || c.err != nil {
		return
	}
	exec, idle := c.ln.res.ExecEnergy, c.ln.res.IdleEnergy
	if exec < 0 || idle < 0 {
		c.failf("negative energy component (exec=%g, idle=%g)", exec, idle)
		return
	}
	total := exec + idle
	if fpx.Lt(total, c.lastTotal) {
		c.failf("total energy decreased from %g to %g", c.lastTotal, total)
		return
	}
	c.lastTotal = total
}

func (c *laneInvariant) checkUtilization() {
	if c == nil || c.err != nil {
		return
	}
	ur := c.ln.ur
	if ur == nil || !c.ln.guaranteed {
		return
	}
	if u := ur.ReservedUtilization(); fpx.Gt(u, 1) {
		c.failf("policy %s reserves utilization %g > 1 for an admitted "+
			"task set", c.ln.cfg.Policy.Name(), u)
	}
}

func (c *laneInvariant) checkMiss(i, inv int, deadline float64) {
	if c == nil || c.err != nil {
		return
	}
	if c.ln.guaranteed {
		c.failf("task %d invocation %d missed its deadline %g under %s, "+
			"which guaranteed the set", i, inv, deadline, c.ln.cfg.Policy.Name())
	}
}
