package sim

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fault"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// harmonicSet builds an exactly-integral harmonic task set (the
// frame-based shape the release table accelerates).
func harmonicSet(t testing.TB, tasks ...task.Task) *task.Set {
	t.Helper()
	ts, err := task.NewSet(tasks...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.Hyperperiod(); !ok {
		t.Fatal("test set is not harmonic")
	}
	return ts
}

// batchTestConfigs builds a varied batch: the scalar runner test's
// generated (non-harmonic) shapes across all six policies, plus
// hand-built harmonic shapes — with phases, with switch overhead, with
// clustered frame releases — that exercise the release-table path.
func batchTestConfigs(t *testing.T) []func() Config {
	t.Helper()
	mk := runnerTestConfigs(t)
	for _, pname := range []string{"none", "staticEDF", "staticRM", "ccEDF", "ccRM", "laEDF"} {
		pname := pname
		harmonics := []func(t testing.TB) Config{
			func(t testing.TB) Config { // pure frame-based: all periods equal
				return Config{
					Tasks: harmonicSet(t,
						task.Task{Period: 20, WCET: 4},
						task.Task{Period: 20, WCET: 3},
						task.Task{Period: 20, WCET: 5},
					),
					Exec:    task.ConstantFraction{C: 0.7},
					Horizon: 500,
				}
			},
			func(t testing.TB) Config { // nested harmonic periods with phases
				return Config{
					Tasks: harmonicSet(t,
						task.Task{Period: 10, WCET: 2, Phase: 3},
						task.Task{Period: 20, WCET: 4},
						task.Task{Period: 40, WCET: 9, Phase: 7},
						task.Task{Period: 40, WCET: 3},
					),
					Exec:    task.UniformFraction{Lo: 0.2, Hi: 1, Rand: rand.New(rand.NewSource(9))},
					Horizon: 777.5,
				}
			},
			func(t testing.TB) Config { // switch overhead: halts jump time across releases
				return Config{
					Tasks: harmonicSet(t,
						task.Task{Period: 8, WCET: 3},
						task.Task{Period: 16, WCET: 5},
					),
					Exec:     task.FullWCET{},
					Horizon:  333,
					Overhead: &machine.SwitchOverhead{FreqOnly: 0.1, VoltageChange: 0.4},
				}
			},
		}
		for hi, mkh := range harmonics {
			mkh := mkh
			_ = hi
			mk = append(mk, func() Config {
				cfg := mkh(t)
				p, err := core.ByName(pname)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Policy = p
				cfg.Machine = machine.Machine1()
				return cfg
			})
		}
	}
	return mk
}

// requireSameAsScalar asserts a batch lane's (result, error) pair is
// identical to the scalar Runner's for the same configuration. Errors
// must agree too (some deliberately-harsh shapes trip the deadline
// invariant under guaranteeing policies — the batch engine must
// reproduce exactly that failure).
func requireSameAsScalar(t *testing.T, label string, got *Result, gotErr error, want *Result, wantErr error) {
	t.Helper()
	if (gotErr != nil) != (wantErr != nil) {
		t.Errorf("%s: batch err=%v, scalar err=%v", label, gotErr, wantErr)
		return
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("%s: batch err %q, scalar err %q", label, gotErr, wantErr)
		}
		return
	}
	if !reflect.DeepEqual(normalizeResult(got), normalizeResult(want)) {
		t.Errorf("%s: batch diverged from scalar\nbatch:  %+v\nscalar: %+v", label, got, want)
	}
}

// The tentpole contract: every per-lane BatchRunner result must be
// bit-identical (DeepEqual) to the scalar Runner's result for the same
// configuration, across all six policies and both generated and
// harmonic workload shapes, with the invariant checker live (it always
// is under go test) and the batch reused across passes.
func TestBatchMatchesScalarAcrossPolicies(t *testing.T) {
	mks := batchTestConfigs(t)
	br := NewBatchRunner()
	for pass := 0; pass < 2; pass++ {
		cfgs := make([]Config, len(mks))
		for i, mk := range mks {
			cfgs[i] = mk()
		}
		results, errs := br.Run(cfgs)
		for i, mk := range mks {
			want, wantErr := Run(mk())
			requireSameAsScalar(t, fmt.Sprintf("pass %d lane %d", pass, i), results[i], errs[i], want, wantErr)
		}
	}
}

// The harmonic shapes must actually engage the release-table path —
// otherwise the identity test above exercises nothing new.
func TestBatchHarmonicLanesUseReleaseTable(t *testing.T) {
	p1, _ := core.ByName("ccEDF")
	p2, _ := core.ByName("ccEDF")
	cfgs := []Config{
		{
			Tasks: harmonicSet(t,
				task.Task{Period: 10, WCET: 2},
				task.Task{Period: 20, WCET: 4, Phase: 5}),
			Machine: machine.Machine0(), Policy: p1, Horizon: 100,
		},
		{ // non-integral period: must stay on the timer heap
			Tasks:   mustSet(t, task.Task{Period: 10.5, WCET: 2}),
			Machine: machine.Machine0(), Policy: p2, Horizon: 100,
		},
	}
	br := NewBatchRunner()
	_, errs := br.Run(cfgs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	if !br.lanes[0].harmonic {
		t.Error("integral harmonic lane did not engage the release table")
	}
	if br.lanes[1].harmonic {
		t.Error("non-integral lane engaged the release table")
	}
}

func mustSet(t testing.TB, tasks ...task.Task) *task.Set {
	t.Helper()
	ts, err := task.NewSet(tasks...)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// A batch of one must equal the scalar Runner exactly.
func TestBatchOfOneEqualsScalar(t *testing.T) {
	for ci, mk := range batchTestConfigs(t) {
		results, errs := RunBatch([]Config{mk()})
		want, wantErr := Run(mk())
		requireSameAsScalar(t, fmt.Sprintf("cfg %d", ci), results[0], errs[0], want, wantErr)
	}
}

// Metamorphic: permuting the lane order must leave every per-lane
// result bit-identical — lanes are independent, so the lockstep
// interleaving order cannot matter.
func TestBatchLanePermutationInvariant(t *testing.T) {
	mks := batchTestConfigs(t)
	n := len(mks)
	perm := rand.New(rand.NewSource(5)).Perm(n)

	cfgs := make([]Config, n)
	for i, mk := range mks {
		cfgs[i] = mk()
	}
	base, errs := NewBatchRunner().Run(cfgs)
	baseClones := make([]*Result, n)
	for i, r := range base {
		if r != nil {
			baseClones[i] = r.Clone()
		}
	}

	permuted := make([]Config, n)
	for pi, src := range perm {
		permuted[pi] = mks[src]()
	}
	permRes, permErrs := NewBatchRunner().Run(permuted)
	for pi, src := range perm {
		requireSameAsScalar(t, fmt.Sprintf("lane %d (orig %d)", pi, src),
			permRes[pi], permErrs[pi], baseClones[src], errs[src])
	}
}

// Lanes with fault injection or trace recording fall back to embedded
// scalar Runners; mixed batches must still report every lane identical
// to a standalone scalar run.
func TestBatchMixedFallbackLanes(t *testing.T) {
	mkFault := func() *fault.Injector {
		return fault.MustNew(fault.Plan{Seed: 11, OverrunProb: 0.3, OverrunFactor: 1.5})
	}
	ts := harmonicSet(t,
		task.Task{Period: 10, WCET: 3},
		task.Task{Period: 20, WCET: 5},
	)
	gen := func() *task.Set {
		r := rand.New(rand.NewSource(321))
		s, err := (&task.Generator{N: 4, Utilization: 0.8, Rand: r}).Generate()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mks := []func() Config{
		func() Config {
			p, _ := core.ByName("ccEDF")
			return Config{Tasks: ts, Machine: machine.Machine0(), Policy: p, Horizon: 200,
				Faults: mkFault()}
		},
		func() Config {
			p, _ := core.ByName("ccEDF")
			return Config{Tasks: ts, Machine: machine.Machine0(), Policy: p, Horizon: 200}
		},
		func() Config {
			p, _ := core.ByName("laEDF")
			return Config{Tasks: gen(), Machine: machine.Machine2(), Policy: p, Horizon: 150,
				Recorder: new(trace.Recorder)}
		},
		func() Config {
			p, _ := core.ByName("laEDF")
			return Config{Tasks: gen(), Machine: machine.Machine2(), Policy: p, Horizon: 150}
		},
	}
	cfgs := make([]Config, len(mks))
	for i, mk := range mks {
		cfgs[i] = mk()
	}
	results, errs := RunBatch(cfgs)
	for i, mk := range mks {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		want, err := Run(mk())
		if err != nil {
			t.Fatalf("lane %d scalar: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeResult(results[i]), normalizeResult(want)) {
			t.Errorf("lane %d (%s): mixed batch diverged from scalar", i, want.Policy)
		}
	}
}

// Sharing one Policy instance between two lanes must be rejected: the
// lanes interleave, so the shared state would corrupt both.
func TestBatchRejectsSharedPolicyInstance(t *testing.T) {
	p, err := core.ByName("ccEDF")
	if err != nil {
		t.Fatal(err)
	}
	ts := harmonicSet(t, task.Task{Period: 10, WCET: 2})
	cfgs := []Config{
		{Tasks: ts, Machine: machine.Machine0(), Policy: p, Horizon: 50},
		{Tasks: ts, Machine: machine.Machine0(), Policy: p, Horizon: 50},
	}
	results, errs := RunBatch(cfgs)
	if errs[0] != nil {
		t.Errorf("first lane with the instance should run: %v", errs[0])
	}
	if results[0] == nil {
		t.Error("first lane returned no result")
	}
	if errs[1] == nil {
		t.Error("second lane sharing the Policy instance should be rejected")
	}
}

// Per-lane validation errors must match the scalar Runner's and leave
// the other lanes untouched.
func TestBatchPerLaneErrors(t *testing.T) {
	good, _ := core.ByName("ccEDF")
	cfgs := []Config{
		{Machine: machine.Machine0(), Policy: good, Horizon: 50},                                          // no tasks
		{Tasks: harmonicSet(t, task.Task{Period: 10, WCET: 2}), Policy: good, Horizon: 50},                // nil machine
		{Tasks: harmonicSet(t, task.Task{Period: 10, WCET: 2}), Machine: machine.Machine0(), Horizon: 50}, // nil policy
		{Tasks: harmonicSet(t, task.Task{Period: 10, WCET: 2}), Machine: machine.Machine0(), Policy: good, Horizon: 50},
	}
	results, errs := RunBatch(cfgs)
	if errs[0] != task.ErrEmptySet {
		t.Errorf("lane 0: got %v, want ErrEmptySet", errs[0])
	}
	if errs[1] == nil || errs[2] == nil {
		t.Errorf("lanes 1,2: want validation errors, got %v, %v", errs[1], errs[2])
	}
	if errs[3] != nil || results[3] == nil {
		t.Errorf("lane 3: valid lane failed: %v", errs[3])
	}
	for i := 0; i < 3; i++ {
		if results[i] != nil {
			t.Errorf("lane %d: result non-nil alongside error", i)
		}
	}
}

// A cancelled batch must report *Canceled (with a partial result) for
// every unfinished lane, mirroring the scalar RunContext contract.
func TestBatchRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: no lane can make progress
	var cfgs []Config
	for i := 0; i < 3; i++ {
		p, _ := core.ByName("ccEDF")
		cfgs = append(cfgs, Config{
			Tasks:   harmonicSet(t, task.Task{Period: 10, WCET: 2}),
			Machine: machine.Machine0(), Policy: p, Horizon: 1e6,
		})
	}
	results, errs := NewBatchRunner().RunContext(ctx, cfgs)
	for i := range cfgs {
		if results[i] != nil {
			t.Errorf("lane %d: result non-nil on cancellation", i)
		}
		c, ok := errs[i].(*Canceled)
		if !ok {
			t.Fatalf("lane %d: got %T (%v), want *Canceled", i, errs[i], errs[i])
		}
		if c.Partial == nil {
			t.Errorf("lane %d: Canceled without partial result", i)
		}
	}
}

// Steady-state batches must not allocate: after the first Run has grown
// every buffer, repeated Runs of the same shape are allocation-free.
func TestBatchRunnerSteadyStateAllocs(t *testing.T) {
	const k = 8
	mk := func() []Config {
		cfgs := make([]Config, k)
		for i := range cfgs {
			p, err := core.ByName("ccEDF")
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = Config{
				Tasks: harmonicSet(t,
					task.Task{Period: 10, WCET: 2},
					task.Task{Period: 20, WCET: 4},
					task.Task{Period: 40, WCET: 6},
				),
				Machine: machine.Machine0(),
				Policy:  p,
				Exec:    task.ConstantFraction{C: 0.6},
				Horizon: 400,
			}
		}
		return cfgs
	}
	cfgs := mk()
	br := NewBatchRunner()
	if _, errs := br.Run(cfgs); errs[0] != nil {
		t.Fatal(errs[0])
	}
	allocs := testing.AllocsPerRun(20, func() {
		results, errs := br.Run(cfgs)
		for i := range errs {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if results[i].Events == 0 {
				t.Fatal("empty result")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch Run allocated %v times per run, want 0", allocs)
	}
}
