package sim

import (
	"math"
	"math/rand"
	"testing"

	"rtdvs/internal/bound"
	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// The conformance suite pins the paper's headline result at sweep level:
// averaged over seeded random task sets, the policies order as
//
//	bound ≤ laEDF ≤ ccEDF ≤ staticEDF ≤ none
//
// in normalized energy (Figures 9-13), every run a policy guarantees is
// miss-free, and the practical policies land within a bounded factor of
// the theoretical convex lower bound. The per-set, per-run versions of
// these claims live in property_test.go; this file checks the aggregate
// curves the paper actually plots.

// conformancePoint holds sweep-averaged normalized energies at one
// utilization, plus the normalized lower bound.
type conformancePoint struct {
	u      float64
	norm   map[string]float64 // policy -> mean energy / mean none energy
	bnd    float64            // mean bound energy / mean none energy
	misses map[string]int     // policy -> total misses over guaranteed runs
}

// conformanceSweep mirrors the experiment harness in miniature: `sets`
// seeded task sets per utilization point, every policy on the identical
// workload, energies averaged then normalized by the no-DVS baseline.
func conformanceSweep(t *testing.T, seed int64, utils []float64, sets int, exec func(r *rand.Rand) task.ExecModel) []conformancePoint {
	t.Helper()
	policies := []string{"none", "staticEDF", "ccEDF", "laEDF"}
	var runner Runner
	points := make([]conformancePoint, 0, len(utils))
	for ui, u := range utils {
		sum := make(map[string]float64, len(policies))
		missed := make(map[string]int, len(policies))
		var bndSum float64
		for si := 0; si < sets; si++ {
			// Same derivation as the experiment harness: independent
			// streams per (utilization, set) cell.
			caseSeed := seed + int64(ui)*1_000_003 + int64(si)*7919
			g := task.Generator{N: 6, Utilization: u, Rand: rand.New(rand.NewSource(caseSeed))}
			ts, err := g.Generate()
			if err != nil {
				t.Fatal(err)
			}
			horizon := math.Min(10*ts.MaxPeriod(), 4000)
			var baseCycles float64
			for _, name := range policies {
				execR := rand.New(rand.NewSource(caseSeed ^ 0x5DEECE66D))
				res, err := runner.Run(Config{
					Tasks:   ts,
					Machine: machine.Machine0(),
					Policy:  mustCore(t, name),
					Exec:    exec(execR),
					Horizon: horizon,
				})
				if err != nil {
					t.Fatal(err)
				}
				sum[name] += res.TotalEnergy
				if res.Guaranteed {
					missed[name] += res.MissCount()
				}
				if name == "none" {
					baseCycles = res.CyclesDone
				}
			}
			bnd, err := bound.Energy(machine.Machine0(), baseCycles, horizon)
			if err != nil {
				t.Fatal(err)
			}
			bndSum += bnd
		}
		pt := conformancePoint{u: u, norm: make(map[string]float64, len(policies)), misses: missed}
		for _, name := range policies {
			pt.norm[name] = sum[name] / sum["none"]
		}
		pt.bnd = bndSum / sum["none"]
		points = append(points, pt)
	}
	return points
}

func conformanceUtils() []float64 {
	return []float64{0.2, 0.4, 0.6, 0.8}
}

// TestConformanceOrderingWCET checks the policy ordering with full-WCET
// execution (Figure 11's workload): at every utilization point the curve
// for each more-aggressive policy lies at or below its predecessor, and
// all curves lie between the bound and 1.
func TestConformanceOrderingWCET(t *testing.T) {
	pts := conformanceSweep(t, 42, conformanceUtils(), 12,
		func(*rand.Rand) task.ExecModel { return task.FullWCET{} })
	assertConformanceOrdering(t, pts, 0)
}

// TestConformanceOrderingConstantC repeats the check with tasks using 70%
// of their WCET (Figure 12, c=0.7) — the regime where the dynamic
// policies separate from the statically-scaled one.
func TestConformanceOrderingConstantC(t *testing.T) {
	pts := conformanceSweep(t, 17, conformanceUtils(), 12,
		func(*rand.Rand) task.ExecModel { return task.ConstantFraction{C: 0.7} })
	assertConformanceOrdering(t, pts, 0)
}

// TestConformanceOrderingUniform repeats the check with uniformly random
// execution times (Figure 13). The sweep average tolerates a sliver of
// noise in the laEDF-vs-ccEDF comparison: with stochastic workloads
// laEDF's deferral can occasionally buy nothing on a particular draw.
func TestConformanceOrderingUniform(t *testing.T) {
	pts := conformanceSweep(t, 7, conformanceUtils(), 12,
		func(r *rand.Rand) task.ExecModel {
			return task.UniformFraction{Lo: 0, Hi: 1, Rand: r}
		})
	assertConformanceOrdering(t, pts, 0.02)
}

// assertConformanceOrdering enforces bound ≤ laEDF ≤ ccEDF ≤ staticEDF ≤
// none at every point. laTol loosens only the laEDF-vs-ccEDF link (see
// TestConformanceOrderingUniform); the other links are theorems and get
// only float slack.
func assertConformanceOrdering(t *testing.T, pts []conformancePoint, laTol float64) {
	t.Helper()
	const eps = 1e-9
	for _, pt := range pts {
		la, cc, se, none := pt.norm["laEDF"], pt.norm["ccEDF"], pt.norm["staticEDF"], pt.norm["none"]
		t.Logf("u=%.2f: bound=%.4f laEDF=%.4f ccEDF=%.4f staticEDF=%.4f none=%.4f",
			pt.u, pt.bnd, la, cc, se, none)
		if none != 1 {
			t.Errorf("u=%.2f: baseline does not normalize to 1 (got %v)", pt.u, none)
		}
		if la > cc+laTol+eps {
			t.Errorf("u=%.2f: laEDF %.4f above ccEDF %.4f", pt.u, la, cc)
		}
		if cc > se+eps {
			t.Errorf("u=%.2f: ccEDF %.4f above staticEDF %.4f", pt.u, cc, se)
		}
		if se > none+eps {
			t.Errorf("u=%.2f: staticEDF %.4f above baseline %.4f", pt.u, se, none)
		}
		// The sweep bound is computed from the baseline's cycle count (as
		// in the experiment harness), but each policy truncates a slightly
		// different sliver of in-flight work at the horizon, so its own
		// cycle count — and thus its minimum energy — can sit a hair
		// lower. 1% covers that truncation; the strict per-run claim
		// (bound on the cycles actually executed) is TestBoundDominates.
		for _, name := range []string{"laEDF", "ccEDF", "staticEDF"} {
			if pt.norm[name] < pt.bnd*0.99 {
				t.Errorf("u=%.2f: %s %.4f far below the lower bound %.4f", pt.u, name, pt.norm[name], pt.bnd)
			}
		}
		for name, n := range pt.misses {
			if n != 0 {
				t.Errorf("u=%.2f: %s missed %d deadlines on guaranteed sets", pt.u, name, n)
			}
		}
	}
}

// TestConformanceBoundGap pins how close the best practical policy comes
// to the unconstrained convex bound: with full-WCET workloads laEDF must
// land within a factor of 2 of the bound at every swept utilization.
// (The bound ignores all timing constraints, so a gap is expected; the
// factor guards against energy-accounting regressions that would widen
// it.)
func TestConformanceBoundGap(t *testing.T) {
	pts := conformanceSweep(t, 42, conformanceUtils(), 12,
		func(*rand.Rand) task.ExecModel { return task.FullWCET{} })
	const maxFactor = 2.0
	for _, pt := range pts {
		if ratio := pt.norm["laEDF"] / pt.bnd; ratio > maxFactor {
			t.Errorf("u=%.2f: laEDF %.4f is %.2fx the bound %.4f (budget %.1fx)",
				pt.u, pt.norm["laEDF"], ratio, pt.bnd, maxFactor)
		} else {
			t.Logf("u=%.2f: laEDF/bound = %.3f", pt.u, ratio)
		}
	}
}

// TestConformanceGuaranteedCoverage makes sure the sweeps above actually
// exercise the zero-miss claim: at the lower utilizations every policy's
// schedulability test must admit the generated sets.
func TestConformanceGuaranteedCoverage(t *testing.T) {
	var runner Runner
	guaranteed := 0
	for si := 0; si < 12; si++ {
		g := task.Generator{N: 6, Utilization: 0.4, Rand: rand.New(rand.NewSource(100 + int64(si)))}
		ts, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range core.Names() {
			res, err := runner.Run(Config{
				Tasks:   ts,
				Machine: machine.Machine0(),
				Policy:  mustCore(t, name),
				Horizon: math.Min(10*ts.MaxPeriod(), 4000),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Guaranteed {
				guaranteed++
				if res.MissCount() != 0 {
					t.Errorf("set %d: %s guaranteed yet missed %d", si, name, res.MissCount())
				}
			}
		}
	}
	if guaranteed < 12 {
		t.Fatalf("only %d guaranteed runs; conformance sweep under-exercises the miss claim", guaranteed)
	}
}
