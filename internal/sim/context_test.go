package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"rtdvs/internal/core"
	"rtdvs/internal/fault"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// longRunConfig builds a configuration whose event count is large enough
// that a run takes real wall time (many short periods over a long
// horizon), so a cancellation mid-run is observable.
func longRunConfig(t *testing.T, horizon float64) Config {
	t.Helper()
	ts, err := task.NewSet(
		task.Task{Period: 1, WCET: 0.2},
		task.Task{Period: 2, WCET: 0.3},
		task.Task{Period: 3, WCET: 0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.ByName("ccEDF")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Tasks:   ts,
		Machine: machine.Machine1(),
		Policy:  p,
		Horizon: horizon,
	}
}

// A background (non-cancellable) context must change nothing: the run is
// bit-identical to plain Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	for _, mk := range runnerTestConfigs(t) {
		want, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunContext(context.Background(), mk())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeResult(want), normalizeResult(got)) {
			t.Fatalf("RunContext(Background) diverged from Run for %s", want.Policy)
		}
	}
}

// An already-expired context must stop the run before any simulated work.
func TestRunContextExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, longRunConfig(t, 1e6))
	if res != nil {
		t.Fatalf("got result %+v from cancelled context", res)
	}
	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("error %T %v, want *Canceled", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) false for %v", err)
	}
	if c.At != 0 {
		t.Errorf("cancelled before the first event but At = %g", c.At)
	}
	if c.Partial == nil || c.Partial.CyclesDone != 0 {
		t.Errorf("partial result %+v, want zero work", c.Partial)
	}
}

// A deadline mid-run must stop the event loop promptly — well before the
// horizon — and return the typed partial result.
func TestRunContextDeadlineMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, longRunConfig(t, 1e9))
	elapsed := time.Since(start)

	var c *Canceled
	if !errors.As(err, &c) {
		t.Fatalf("error %T %v, want *Canceled", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, DeadlineExceeded) false for %v", err)
	}
	// The poll interval is a 64-event batch costing microseconds; three
	// seconds of slack means a hang, not scheduler jitter.
	if elapsed > 3*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
	if c.At <= 0 || c.At >= 1e9 {
		t.Errorf("partial progress At = %g, want inside (0, horizon)", c.At)
	}
	if c.Partial.CyclesDone <= 0 {
		t.Errorf("partial result reports no work: %+v", c.Partial)
	}
	if c.Partial.TotalEnergy != c.Partial.ExecEnergy+c.Partial.IdleEnergy {
		t.Errorf("partial result energy not folded: %+v", c.Partial)
	}
}

// A Runner that just failed — cancelled mid-run or errored on an
// invariant violation — must be as good as new on the next Run: results
// DeepEqual those of a fresh Runner.
func TestRunnerReuseAfterFailure(t *testing.T) {
	configs := runnerTestConfigs(t)
	runner := NewRunner()

	poison := []func(t *testing.T){
		func(t *testing.T) {
			// Cancelled mid-run: the event loop stops with live heaps,
			// partial per-task state, and a half-filled result.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := runner.RunContext(ctx, longRunConfig(t, 1e6)); err == nil {
				t.Fatal("cancelled run succeeded")
			}
		},
		func(t *testing.T) {
			// Invariant violation: the run errors after simulating for a
			// while under a policy that fabricates operating points.
			cfg := invariantConfig(t, &offGridPolicy{})
			if _, err := runner.Run(cfg); err == nil {
				t.Fatal("off-grid policy run succeeded")
			}
		},
		func(t *testing.T) {
			// Validation failure at entry (nil machine).
			if _, err := runner.Run(Config{Tasks: task.PaperExample(), Policy: mustPolicy(t, "none")}); err == nil {
				t.Fatal("nil-machine run succeeded")
			}
		},
	}

	for pi, bad := range poison {
		bad(t)
		for ci, mk := range configs {
			want, err := Run(mk())
			if err != nil {
				t.Fatalf("poison %d cfg %d: fresh run: %v", pi, ci, err)
			}
			got, err := runner.Run(mk())
			if err != nil {
				t.Fatalf("poison %d cfg %d: reused run after failure: %v", pi, ci, err)
			}
			if !reflect.DeepEqual(normalizeResult(want), normalizeResult(got)) {
				t.Errorf("poison %d cfg %d (%s): runner poisoned by failed run\nfresh:  %+v\nreused: %+v",
					pi, ci, want.Policy, want, got)
			}
			// Re-poison between configs only for the first few to keep the
			// test fast; one error→success transition per config suffices.
			if ci >= 2 {
				break
			}
			bad(t)
		}
	}

	// Finally, the full reuse matrix after a failure storm.
	for _, bad := range poison {
		bad(t)
	}
	for ci, mk := range configs {
		want, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeResult(want), normalizeResult(got)) {
			t.Errorf("cfg %d (%s): reuse diverged after failure storm", ci, want.Policy)
		}
	}
}

// Cancellation must compose with fault injection: the partial result
// carries the fault record accumulated so far.
func TestRunContextCancelKeepsFaultRecord(t *testing.T) {
	cfg := longRunConfig(t, 1e6)
	cfg.Faults = fault.MustNew(fault.Plan{Seed: 7, OverrunProb: 0.2, OverrunFactor: 1.2})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
		close(done)
	}()
	_, err := RunContext(ctx, cfg)
	<-done
	var c *Canceled
	if !errors.As(err, &c) {
		// The run may legitimately finish before the cancel lands on a
		// fast machine; only a non-Canceled *error* is a failure.
		if err != nil {
			t.Fatalf("unexpected error %v", err)
		}
		t.Skip("run finished before cancellation landed")
	}
	if c.Partial.Faults == nil {
		t.Error("partial result dropped the fault record")
	}
}
