package sim

import (
	"math/rand"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// burstyExec models the paper's Section 2.2 argument: tasks usually use a
// third of their worst case, but every 25th invocation demands the full
// bound (a scene change, a retransmission storm). Average-throughput
// governors slow down on the quiet stretches and are caught flat-footed
// by the bursts.
type burstyExec struct{}

func (burstyExec) Cycles(_, inv int, wcet float64) float64 {
	if inv%25 == 24 {
		return wcet
	}
	return wcet / 3
}
func (burstyExec) String() string { return "bursty" }

// The quantitative version of the paper's camcorder argument: on a
// deadline-critical task set, the interval governor misses deadlines
// while every RT-DVS policy stays clean at comparable (or better) energy.
func TestIntervalGovernorMissesWhereRTDVSDoesNot(t *testing.T) {
	// The camcorder controller: tight 5 ms sensor deadline, 3 ms WCET.
	ts := task.MustSet(
		task.Task{Name: "sensor", Period: 5, WCET: 3},
		task.Task{Name: "stabilize", Period: 33, WCET: 6},
		task.Task{Name: "servo", Period: 20, WCET: 2},
	)
	m := machine.Machine0()

	gov, err := core.IntervalDVS(20, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Tasks: ts, Machine: m, Policy: gov, Exec: burstyExec{}, Horizon: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() == 0 {
		t.Fatal("the average-throughput governor should miss deadlines on bursty load")
	}

	for _, name := range core.Names() {
		p, err := core.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Run(Config{Tasks: ts, Machine: m, Policy: p, Exec: burstyExec{}, Horizon: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if rt.MissCount() != 0 {
			t.Errorf("%s missed %d deadlines on the camcorder workload", name, rt.MissCount())
		}
	}

	// The governor's energy advantage comes purely from under-provisioning
	// (it drops work on the floor at every burst); laEDF pays a bounded
	// premium — it must reserve worst-case capacity for every invocation —
	// in exchange for zero misses.
	la, err := core.ByName("laEDF")
	if err != nil {
		t.Fatal(err)
	}
	laRes, err := Run(Config{Tasks: ts, Machine: m, Policy: la, Exec: burstyExec{}, Horizon: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if laRes.TotalEnergy > 1.6*res.TotalEnergy {
		t.Errorf("laEDF energy %v more than 1.6× the governor's %v — premium unexpectedly large",
			laRes.TotalEnergy, res.TotalEnergy)
	}
}

// stEDF end-to-end: on a workload whose demand is usually far below the
// worst case, the statistical policy beats ccEDF on energy while missing
// (almost) nothing.
func TestStatisticalEDFEnergyVsMisses(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := task.Generator{N: 6, Utilization: 0.75, Rand: r}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	exec := func() task.ExecModel {
		return task.UniformFraction{Lo: 0.1, Hi: 0.6, Rand: rand.New(rand.NewSource(23))}
	}
	horizon := 10 * ts.MaxPeriod()

	cc, err := core.ByName("ccEDF")
	if err != nil {
		t.Fatal(err)
	}
	ccRes, err := Run(Config{Tasks: ts, Machine: machine.Machine2(), Policy: cc, Exec: exec(), Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}

	st, err := core.StatisticalEDF(0.95)
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := Run(Config{Tasks: ts, Machine: machine.Machine2(), Policy: st, Exec: exec(), Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}

	if stRes.TotalEnergy >= ccRes.TotalEnergy {
		t.Errorf("stEDF energy %v not below ccEDF %v", stRes.TotalEnergy, ccRes.TotalEnergy)
	}
	// Statistical guarantee: a small number of misses is tolerable, a
	// large number means the budget-overrun fallback is broken.
	if frac := float64(stRes.MissCount()) / float64(stRes.Releases); frac > 0.02 {
		t.Errorf("stEDF miss fraction %.3f too high (%d of %d)",
			frac, stRes.MissCount(), stRes.Releases)
	}
}

// The miss exposure must shrink as the reservation quantile rises.
func TestStatisticalEDFQuantileControlsRisk(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	g := task.Generator{N: 6, Utilization: 0.9, Rand: r}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 15 * ts.MaxPeriod()
	missAt := func(q float64) (int, float64) {
		p, err := core.StatisticalEDF(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Tasks: ts, Machine: machine.Machine2(), Policy: p,
			Exec:    task.UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(31))},
			Horizon: horizon,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MissCount(), res.TotalEnergy
	}
	missLo, energyLo := missAt(0.5)
	missHi, energyHi := missAt(0.99)
	if missHi > missLo {
		t.Errorf("raising the quantile increased misses: q=0.99 %d vs q=0.5 %d", missHi, missLo)
	}
	if energyHi < energyLo {
		t.Errorf("raising the quantile decreased energy: %v vs %v (risk/energy trade inverted)",
			energyHi, energyLo)
	}
}
