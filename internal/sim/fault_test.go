package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fault"
	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Policy.Name(), err)
	}
	return res
}

// A present-but-silent injector (zero plan: no fault class enabled) must
// leave every observable of the run bit-identical to the nil-Faults
// path: the injection hooks are pass-throughs until a fault fires.
func TestSilentInjectorBitIdentical(t *testing.T) {
	// Variable per-invocation demand keeps the point moving (switch
	// attempts included in the comparison); each run gets its own
	// same-seeded stream. ccRM is absent only because its guarantee does
	// not survive these switch overheads even fault-free.
	base := func() Config {
		return Config{
			Tasks:    task.PaperExample(),
			Machine:  machine.Machine0(),
			Exec:     task.UniformFraction{Lo: 0.2, Hi: 0.9, Rand: rand.New(rand.NewSource(17))},
			Overhead: &machine.SwitchOverhead{FreqOnly: 0.041, VoltageChange: 0.4},
		}
	}
	for _, name := range []string{"none", "staticEDF", "ccEDF", "laEDF"} {
		cfgA := base()
		cfgA.Policy = mustPolicy(t, name)
		a := mustRun(t, cfgA)

		cfgB := base()
		cfgB.Policy = mustPolicy(t, name)
		cfgB.Faults = fault.MustNew(fault.Plan{Seed: 99})
		b := mustRun(t, cfgB)

		if b.Faults == nil || b.Faults.Total() != 0 {
			t.Fatalf("%s: silent injector fired: %+v", name, b.Faults)
		}
		b.Faults = nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: silent injector changed the run:\nnil:    %+v\nsilent: %+v", name, a, b)
		}
	}
}

// The central containment claim, deterministic: a task set where plain
// ccEDF misses on every injected overrun while the contained variant
// absorbs every one of them at full speed.
func TestOverrunContainmentPreventsMisses(t *testing.T) {
	// U = 0.34 → ccEDF runs at 0.5. An overrun inflates demand to
	// 5.1 cycles, which needs relative speed 0.51 > 0.5: plain ccEDF
	// misses every deadline. Containment escalates to full speed at
	// budget exhaustion (t = 6.8 into the period) and finishes by 8.5.
	newCfg := func(policy string) Config {
		return Config{
			Tasks:   task.MustSet(task.Task{Period: 10, WCET: 3.4}),
			Machine: machine.Machine0(),
			Policy:  mustPolicy(t, policy),
			Faults:  fault.MustNew(fault.Plan{Seed: 1, OverrunProb: 1, OverrunFactor: 1.5}),
		}
	}

	plain := mustRun(t, newCfg("ccEDF")) // no invariant error: miss has fault provenance
	if plain.MissCount() == 0 {
		t.Fatal("plain ccEDF absorbed a 1.5x overrun at half speed")
	}
	if plain.Faults.Overruns != plain.Releases {
		t.Errorf("overruns fired %d of %d releases at p=1", plain.Faults.Overruns, plain.Releases)
	}

	cfg := newCfg("ccEDF+contain")
	contained := mustRun(t, cfg)
	if n := contained.MissCount(); n != 0 {
		t.Fatalf("contained ccEDF missed %d deadlines: %+v", n, contained.Misses)
	}
	cr := cfg.Policy.(core.ContainmentReporter)
	if cr.Containments() != contained.Releases {
		t.Errorf("containments = %d, want one per release (%d)",
			cr.Containments(), contained.Releases)
	}
	// Containment costs energy: full-speed segments replace half-speed
	// ones, so the contained run must burn more than a fault-free one.
	ff := newCfg("ccEDF+contain")
	ff.Faults = nil
	baseline := mustRun(t, ff)
	if contained.TotalEnergy <= baseline.TotalEnergy {
		t.Errorf("contained energy %g not above fault-free %g",
			contained.TotalEnergy, baseline.TotalEnergy)
	}
}

// The no-miss invariant's relaxation is exactly as narrow as the
// provenance: a configured injector that has not actually fired grants
// nothing, and a false guarantee still trips the checker.
func TestSilentInjectorDoesNotRelaxNoMissInvariant(t *testing.T) {
	cfg := invariantConfig(t, &falseGuaranteePolicy{})
	// OverrunFactor 1 can never produce demand beyond the declared
	// bound, so this injector stays silent forever.
	cfg.Faults = fault.MustNew(fault.Plan{Seed: 1, OverrunProb: 1, OverrunFactor: 1})
	wantViolation(t, cfg, "missed its deadline")
	if cfg.Faults.ModelViolated() {
		t.Fatal("factor-1 injector claims a model violation")
	}
}

// Release jitter delays the release while the deadline stays on the
// nominal grid; a tight task then misses even under plain EDF at full
// speed, and the miss carries fault provenance (no invariant error).
func TestReleaseJitterCompressesWindows(t *testing.T) {
	cfg := Config{
		Tasks:   task.MustSet(task.Task{Period: 10, WCET: 6}),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Faults:  fault.MustNew(fault.Plan{Seed: 3, JitterProb: 1, JitterMax: 5}),
	}
	res := mustRun(t, cfg)
	if !res.Guaranteed {
		t.Fatal("U=0.6 set not admitted at full speed")
	}
	if res.MissCount() == 0 {
		t.Fatal("no misses despite 6 ms demand in windows compressed below 6 ms")
	}
	if res.Faults.Jitters == 0 {
		t.Fatal("no jitter events recorded")
	}
	for _, m := range res.Misses {
		// Deadlines stay on the nominal period grid.
		if !fpx.Eq(math.Mod(m.Deadline, 10), 0) {
			t.Errorf("miss deadline %g is off the nominal grid", m.Deadline)
		}
		if m.Remaining <= 0 {
			t.Errorf("aborted job had no work left: %+v", m)
		}
	}
	// The aborted jobs were killed at their deadlines, not at the late
	// next release: no completion can postdate its deadline by more than
	// the window allows.
	// Every release resolves as a completion or a deadline abort, save at
	// most one invocation still in flight when the horizon cuts off.
	if gap := res.Releases - res.Completions - res.MissCount(); gap < 0 || gap > 1 {
		t.Errorf("releases %d vs completions %d + misses %d",
			res.Releases, res.Completions, res.MissCount())
	}
}

// Timer drift compounds across releases as a random-walk lateness.
func TestTimerDriftDelaysReleases(t *testing.T) {
	cfg := Config{
		Tasks:   task.MustSet(task.Task{Period: 10, WCET: 2}),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Faults:  fault.MustNew(fault.Plan{Seed: 8, DriftProb: 1, DriftMax: 1}),
		Horizon: 500,
	}
	res := mustRun(t, cfg)
	if res.Faults.Drifts == 0 {
		t.Fatal("no drift events recorded at p=1")
	}
}

// Denied and stuck transitions leave the hardware at its previous
// (valid) operating point; the run completes and the denials are
// recorded. The point-discreteness invariant stays live throughout.
func TestSwitchDenialsLeaveHardwareOnGrid(t *testing.T) {
	cfg := Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "ccEDF"),
		// Variable demand keeps ccEDF hopping between points, so the run
		// attempts plenty of transitions for the injector to refuse.
		Exec: task.UniformFraction{Lo: 0.2, Hi: 0.9, Rand: rand.New(rand.NewSource(6))},
		Faults: fault.MustNew(fault.Plan{
			Seed: 7, SwitchDenyProb: 0.4, StuckProb: 0.1, StuckSpan: 3,
		}),
	}
	res := mustRun(t, cfg)
	rec := res.Faults
	if rec.SwitchesDenied == 0 && rec.SwitchesStuck == 0 {
		t.Fatalf("no switch faults fired: %+v", rec)
	}
	if res.Switches == 0 {
		t.Error("every switch denied at p=0.4; retry path never succeeded")
	}
}

// Inflated stop intervals charge more halt time than the fault-free
// overhead model.
func TestOverheadInflationChargesLongerHalts(t *testing.T) {
	newCfg := func() Config {
		return Config{
			Tasks:    task.PaperExample(),
			Machine:  machine.Machine0(),
			Policy:   mustPolicy(t, "ccEDF"),
			Overhead: &machine.SwitchOverhead{FreqOnly: 0.1, VoltageChange: 0.5},
		}
	}
	base := mustRun(t, newCfg())
	cfg := newCfg()
	cfg.Faults = fault.MustNew(fault.Plan{Seed: 5, OverheadProb: 1, OverheadFactor: 3})
	inflated := mustRun(t, cfg)
	if inflated.Faults.OverheadsInflated == 0 {
		t.Fatal("no inflation events at p=1")
	}
	if inflated.HaltTime <= base.HaltTime {
		t.Errorf("inflated halt time %g not above nominal %g",
			inflated.HaltTime, base.HaltTime)
	}
}

// Task-keyed fault classes (overruns, jitter, drift) depend only on
// (seed, task, invocation), so two different policies experience the
// identical fault history — the property robustness curves rely on for
// a fair comparison.
func TestFaultHistoryIdenticalAcrossPolicies(t *testing.T) {
	plan := fault.Plan{
		Seed: 11, OverrunProb: 0.2, OverrunFactor: 1.5,
		JitterProb: 0.2, JitterMax: 1, DriftProb: 0.2, DriftMax: 0.5,
	}
	run := func(policy string) *fault.Record {
		cfg := Config{
			Tasks:   task.PaperExample(),
			Machine: machine.Machine0(),
			Policy:  mustPolicy(t, policy),
			Faults:  fault.MustNew(plan),
		}
		return mustRun(t, cfg).Faults
	}
	a, b := run("ccEDF"), run("laEDF")
	if a.Overruns != b.Overruns || a.Jitters != b.Jitters || a.Drifts != b.Drifts {
		t.Errorf("fault counts diverge across policies: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.TaskOverruns, b.TaskOverruns) {
		t.Errorf("per-task overruns diverge: %v vs %v", a.TaskOverruns, b.TaskOverruns)
	}
}

// Two runs of the same configuration and seed are identical in full —
// results, misses, fired faults.
func TestFaultedRunsDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := Config{
			Tasks:   task.PaperExample(),
			Machine: machine.Machine1(),
			Policy:  mustPolicy(t, "laEDF+contain"),
			Faults:  fault.MustNew(fault.Default(42)),
		}
		return mustRun(t, cfg)
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different runs:\n%+v\n%+v", a, b)
	}
}
