package sim

import (
	"math"
	"testing"

	"rtdvs/internal/machine"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// exampleTrace records the worked example's execution under a policy.
func exampleTrace(t *testing.T, policy string) []trace.Segment {
	t.Helper()
	var rec trace.Recorder
	_, err := Run(Config{
		Tasks:    task.PaperExample(),
		Machine:  machine.Machine0(),
		Policy:   mustPolicy(t, policy),
		Exec:     task.PaperExampleExec(),
		Horizon:  16,
		Recorder: &rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Segments()
}

// seg describes an expected execution segment for golden comparisons.
type seg struct {
	task       int
	start, end float64
	freq       float64
}

func checkTrace(t *testing.T, policy string, want []seg) {
	t.Helper()
	got := exampleTrace(t, policy)
	busy := got[:0:0]
	for _, s := range got {
		if s.Task >= 0 {
			busy = append(busy, s)
		}
	}
	if len(busy) != len(want) {
		t.Fatalf("%s: %d busy segments, want %d\ngot: %+v", policy, len(busy), len(want), busy)
	}
	const tol = 1e-6
	for i, w := range want {
		g := busy[i]
		if g.Task != w.task ||
			math.Abs(g.Start-w.start) > tol ||
			math.Abs(g.End-w.end) > tol ||
			math.Abs(g.Point.Freq-w.freq) > tol {
			t.Errorf("%s segment %d: got T%d [%.4f,%.4f]@%.2f, want T%d [%.4f,%.4f]@%.2f",
				policy, i, g.Task+1, g.Start, g.End, g.Point.Freq,
				w.task+1, w.start, w.end, w.freq)
		}
	}
}

// Figure 2 (top): statically-scaled EDF at 0.75. T1 takes 2/0.75 = 2.67 ms
// etc.; EDF priority order T1, T2, T3 at time 0.
func TestGoldenTraceStaticEDF(t *testing.T) {
	third := 1.0 / 3
	checkTrace(t, "staticEDF", []seg{
		{0, 0, 2 + 2*third, 0.75}, // T1: 2 cycles at 0.75
		{1, 2 + 2*third, 4, 0.75}, // T2: 1 cycle
		{2, 4, 5 + third, 0.75},   // T3: 1 cycle
		{0, 8, 9 + third, 0.75},   // T1 second invocation
		{1, 10, 11 + third, 0.75}, // T2 second invocation
		{2, 14, 15 + third, 0.75}, // T3 second invocation
	})
}

// Figure 3: cycle-conserving EDF. Frequencies 0.75 until T2's completion
// lowers utilization to 0.421, then 0.5; second T2/T3 invocations run at
// 0.5 (U = 0.496 and 0.296).
func TestGoldenTraceCCEDF(t *testing.T) {
	third := 1.0 / 3
	checkTrace(t, "ccEDF", []seg{
		{0, 0, 2 + 2*third, 0.75},
		{1, 2 + 2*third, 4, 0.75},
		{2, 4, 6, 0.5},
		{0, 8, 9 + third, 0.75},
		{1, 10, 12, 0.5},
		{2, 14, 16, 0.5},
	})
}

// Figure 5: cycle-conserving RM. Starts at 1.0 (pacing the worst-case
// full-speed RM schedule), drops to 0.75 after T1, 0.5 after T2; T1's
// second invocation needs 1.0 again, T2's runs at 0.75, T3's at 0.5.
func TestGoldenTraceCCRM(t *testing.T) {
	third := 1.0 / 3
	checkTrace(t, "ccRM", []seg{
		{0, 0, 2, 1.0},
		{1, 2, 3 + third, 0.75},
		{2, 3 + third, 5 + third, 0.5},
		{0, 8, 9, 1.0},
		{1, 10, 11 + third, 0.75},
		{2, 14, 16, 0.5},
	})
}

// Figure 7: look-ahead EDF. Deferral lets everything after T1's first
// invocation run at the minimum frequency.
func TestGoldenTraceLAEDF(t *testing.T) {
	third := 1.0 / 3
	checkTrace(t, "laEDF", []seg{
		{0, 0, 2 + 2*third, 0.75},
		{1, 2 + 2*third, 4 + 2*third, 0.5},
		{2, 4 + 2*third, 6 + 2*third, 0.5},
		{0, 8, 10, 0.5},
		{1, 10, 12, 0.5},
		{2, 14, 16, 0.5},
	})
}

// Plain EDF runs everything back-to-back at full speed.
func TestGoldenTraceNone(t *testing.T) {
	checkTrace(t, "none", []seg{
		{0, 0, 2, 1.0},
		{1, 2, 3, 1.0},
		{2, 3, 4, 1.0},
		{0, 8, 9, 1.0},
		{1, 10, 11, 1.0},
		{2, 14, 15, 1.0},
	})
}

// Completion times must respect EDF vs RM priority structure: under RM
// the short-period task always preempts; the example has no preemptions
// because releases are staggered, so both orders look alike here — but
// a crafted set distinguishes them.
func TestRMPreemptsShortPeriod(t *testing.T) {
	ts := task.MustSet(
		task.Task{Name: "long", Period: 20, WCET: 6},
		task.Task{Name: "short", Period: 5, WCET: 1},
	)
	var rec trace.Recorder
	_, err := Run(Config{
		Tasks:    ts,
		Machine:  machine.Machine0(),
		Policy:   mustPolicy(t, "noneRM"),
		Horizon:  20,
		Recorder: &rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At t=5, "short" must preempt "long" (which started after short's
	// first invocation at t=1 and still has work).
	segs := rec.Segments()
	var preempted bool
	for i := 1; i < len(segs); i++ {
		if segs[i].Task == 1 && segs[i-1].Task == 0 && segs[i].Start > 4.9 && segs[i].Start < 5.1 {
			preempted = true
		}
	}
	if !preempted {
		t.Errorf("short-period task did not preempt at t=5: %+v", segs)
	}
}
