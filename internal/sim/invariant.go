package sim

import (
	"fmt"

	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
)

// UtilizationReporter is implemented by policies that maintain explicit
// utilization bookkeeping (cycle-conserving EDF reports ΣU_i, look-ahead
// EDF the peak cumulative utilization of its deferral walk). The
// invariant checker asserts the reported value stays within the
// schedulability bound (≤ 1) for admitted task sets.
type UtilizationReporter interface {
	ReservedUtilization() float64
}

// invariantChecker validates runtime invariants of a simulation as it
// executes. It is enabled by Config.CheckInvariants and automatically
// under `go test` (testing.Testing()), so every test in the repository
// runs with the checker live. The invariants:
//
//  1. the hardware operating point is always one of the machine's
//     discrete points — policies must not fabricate frequency/voltage
//     pairs the platform cannot realize;
//  2. energy accounting is physical: components are non-negative and the
//     running total never decreases;
//  3. a policy with utilization bookkeeping never reserves more than the
//     full-speed capacity (≤ 1) while its admission guarantee holds;
//  4. a policy whose schedulability test admitted the set (Guaranteed)
//     never produces a deadline miss — the paper's central claim.
//
// Invariants 3 and 4 carry fault provenance: both are derived from the
// task model the admission test ran against, so once an injected fault
// has actually broken that model (fault.Injector.ModelViolated — an
// overrun, a late release, a refused speed-up) a miss or an over-reserve
// no longer falsifies the policy and the check stands down. The
// relaxation is exactly that narrow: a configured-but-silent injector
// relaxes nothing, and invariants 1 and 2 (point discreteness, physical
// energy accounting) hold unconditionally — no fault excuses them.
//
// Only the first violation is recorded; checks are cheap enough to stay
// on for every run. All methods are safe on a nil receiver so the
// simulator's hook sites need no guards.
type invariantChecker struct {
	s         *simulator
	lastTotal float64
	err       error
}

// Err returns the first recorded violation, if any.
func (c *invariantChecker) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

func (c *invariantChecker) failf(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf("sim: invariant violated at t=%g: %s",
			c.s.now, fmt.Sprintf(format, args...))
	}
}

// checkPoint asserts op is one of the machine's discrete operating
// points. Exact equality is intentional: a point drifted by any amount
// is one the hardware cannot be set to.
func (c *invariantChecker) checkPoint(op machine.OperatingPoint) {
	if c == nil || c.err != nil {
		return
	}
	for _, p := range c.s.cfg.Machine.Points {
		if p == op {
			return
		}
	}
	c.failf("policy %s selected operating point (f=%g, V=%g), which is not "+
		"one of the machine's discrete points",
		c.s.cfg.Policy.Name(), op.Freq, op.Voltage)
}

// checkEnergy asserts the energy accounting is non-negative and the
// running total is monotone non-decreasing.
func (c *invariantChecker) checkEnergy() {
	if c == nil || c.err != nil {
		return
	}
	exec, idle := c.s.res.ExecEnergy, c.s.res.IdleEnergy
	if exec < 0 || idle < 0 {
		c.failf("negative energy component (exec=%g, idle=%g)", exec, idle)
		return
	}
	total := exec + idle
	if fpx.Lt(total, c.lastTotal) {
		c.failf("total energy decreased from %g to %g", c.lastTotal, total)
		return
	}
	c.lastTotal = total
}

// modelViolated reports whether an injected fault has already broken an
// assumption the admission guarantee rests on. This is the provenance
// that distinguishes "the policy is wrong" from "the workload left the
// declared model": a nil or still-silent injector reports false and the
// model-derived invariants stay fully enforced.
func (c *invariantChecker) modelViolated() bool {
	f := c.s.cfg.Faults
	return f != nil && f.ModelViolated()
}

// checkUtilization asserts that a utilization-reporting policy stays
// within the full-speed capacity bound while its guarantee holds. An
// injected overrun legitimately breaks the bound — completion usage
// beyond the declared WCET pushes cc_i/P_i past the reservation the
// test admitted — so the check stands down once the model is violated.
func (c *invariantChecker) checkUtilization() {
	if c == nil || c.err != nil {
		return
	}
	pol := c.s.cfg.Policy
	ur, ok := pol.(UtilizationReporter)
	if !ok || !pol.Guaranteed() || c.modelViolated() {
		return
	}
	if u := ur.ReservedUtilization(); fpx.Gt(u, 1) {
		c.failf("policy %s reserves utilization %g > 1 for an admitted "+
			"task set", pol.Name(), u)
	}
}

// checkMiss is called when invocation inv of task i missed its deadline.
// Under a policy whose admission test passed, this falsifies the
// deadline-preservation claim — unless an injected fault already broke
// the task model the test ran against, in which case the miss traces to
// the fault, not the policy.
func (c *invariantChecker) checkMiss(i, inv int, deadline float64) {
	if c == nil || c.err != nil {
		return
	}
	pol := c.s.cfg.Policy
	if pol.Guaranteed() && !c.modelViolated() {
		c.failf("task %d invocation %d missed its deadline %g under %s, "+
			"which guaranteed the set", i, inv, deadline, pol.Name())
	}
}
