package sim

import (
	"strings"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
)

// The negative tests below each violate exactly one invariant through a
// deliberately broken policy (or by driving the checker directly where
// the simulator's own accounting cannot misbehave), and the positive
// tests confirm the real policies run violation-free with the checker
// explicitly enabled. Beyond these, testing.Testing() keeps the checker
// live in every other simulation test in the repository.

// evilBase supplies the boring parts of a fake policy.
type evilBase struct {
	m *machine.Spec
}

func (p *evilBase) Name() string          { return "evil" }
func (p *evilBase) Scheduler() sched.Kind { return sched.EDF }
func (p *evilBase) Attach(_ *task.Set, m *machine.Spec) error {
	p.m = m
	return nil
}
func (p *evilBase) Guaranteed() bool                       { return true }
func (p *evilBase) OnRelease(core.System, int)             {}
func (p *evilBase) OnCompletion(core.System, int, float64) {}
func (p *evilBase) OnExecute(int, float64)                 {}
func (p *evilBase) Point() machine.OperatingPoint          { return p.m.Max() }
func (p *evilBase) IdlePoint() machine.OperatingPoint      { return p.m.Min() }

// offGridPolicy selects an operating point the machine does not have.
type offGridPolicy struct{ evilBase }

func (p *offGridPolicy) Point() machine.OperatingPoint {
	return machine.OperatingPoint{Freq: 0.123, Voltage: 0.456}
}

// overReservePolicy claims a guarantee while reserving more than the
// full-speed capacity.
type overReservePolicy struct{ evilBase }

func (p *overReservePolicy) ReservedUtilization() float64 { return 1.5 }

// falseGuaranteePolicy claims a guarantee but pins the processor at the
// minimum frequency, so an infeasible-at-min set must miss.
type falseGuaranteePolicy struct{ evilBase }

func (p *falseGuaranteePolicy) Point() machine.OperatingPoint { return p.m.Min() }

func invariantConfig(t *testing.T, p core.Policy) Config {
	t.Helper()
	ts, err := task.NewSet(task.Task{Period: 10, WCET: 6})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Tasks:           ts,
		Machine:         machine.Machine0(),
		Policy:          p,
		Horizon:         50,
		CheckInvariants: true,
	}
}

func wantViolation(t *testing.T, cfg Config, fragment string) {
	t.Helper()
	res, err := Run(cfg)
	if err == nil {
		t.Fatalf("Run succeeded (result %+v), want invariant violation mentioning %q", res, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("violation %q does not mention %q", err, fragment)
	}
}

func TestInvariantOffGridPoint(t *testing.T) {
	wantViolation(t, invariantConfig(t, &offGridPolicy{}), "not one of the machine's discrete points")
}

func TestInvariantOverReservation(t *testing.T) {
	wantViolation(t, invariantConfig(t, &overReservePolicy{}), "reserves utilization")
}

func TestInvariantFalseGuarantee(t *testing.T) {
	// Machine0's minimum frequency is 0.5, so U = 0.6 cannot be served:
	// a policy that guarantees the set anyway must trip the miss check.
	wantViolation(t, invariantConfig(t, &falseGuaranteePolicy{}), "missed its deadline")
}

// TestInvariantEnergyMonotone drives the checker directly: the
// simulator's own accounting only ever adds energy, so a regression is
// modeled by rewinding the result counters between checks.
func TestInvariantEnergyMonotone(t *testing.T) {
	s := &simulator{}
	c := &invariantChecker{s: s}

	s.res.ExecEnergy = 5
	c.checkEnergy()
	if c.Err() != nil {
		t.Fatalf("monotone increase flagged: %v", c.Err())
	}
	s.res.ExecEnergy = 3
	c.checkEnergy()
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "energy decreased") {
		t.Fatalf("want energy-decrease violation, got %v", err)
	}

	s2 := &simulator{}
	c2 := &invariantChecker{s: s2}
	s2.res.IdleEnergy = -1
	c2.checkEnergy()
	if err := c2.Err(); err == nil || !strings.Contains(err.Error(), "negative energy") {
		t.Fatalf("want negative-energy violation, got %v", err)
	}
}

// TestInvariantsCleanOnRealPolicies runs every registered policy over a
// schedulable set with the checker explicitly enabled: the positive
// counterpart of the violation tests above.
func TestInvariantsCleanOnRealPolicies(t *testing.T) {
	ts, err := task.NewSet(
		task.Task{Period: 8, WCET: 2},
		task.Task{Period: 10, WCET: 1},
		task.Task{Period: 14, WCET: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.All() {
		cfg := Config{
			Tasks:           ts,
			Machine:         machine.Machine0(),
			Policy:          p,
			Horizon:         280,
			CheckInvariants: true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		if !res.Guaranteed {
			t.Errorf("%s: schedulable set not admitted", p.Name())
		}
		if len(res.Misses) != 0 {
			t.Errorf("%s: %d misses on a guaranteed set", p.Name(), len(res.Misses))
		}
	}
}

// TestUtilizationReporters pins that the two dynamic EDF policies expose
// their bookkeeping: without this the utilization invariant silently
// checks nothing.
func TestUtilizationReporters(t *testing.T) {
	for _, name := range []string{"ccEDF", "laEDF"} {
		p, err := core.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(UtilizationReporter); !ok {
			t.Errorf("%s does not implement UtilizationReporter", name)
		}
	}
}
