package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// Metamorphic properties: transformations of the input with a known,
// exact effect on the output. Unlike the ordering properties in
// property_test.go these compare two full simulations bit for bit, so
// they catch accounting drift that tolerance-based checks absorb.

// metamorphicPolicies is every registered policy, resolved once.
var metamorphicPolicies = []string{"none", "staticRM", "staticEDF", "ccRM", "ccEDF", "laEDF"}

// drawSet generates a schedulable-ish random set from a quick-provided
// seed. Sizes and utilizations are kept inside the generator's supported
// range.
func drawSet(seed int64, n int, u float64) (*task.Set, error) {
	g := task.Generator{N: n, Utilization: u, Rand: rand.New(rand.NewSource(seed))}
	return g.Generate()
}

// TestMetamorphicTimeScaling: multiplying every period, WCET, and the
// horizon by a common power of two rescales time exactly in binary
// floating point, so each run's energy scales by exactly that factor and
// the normalized energy (policy / baseline) is bit-identical. Frequency
// choices depend only on utilization ratios, which the scaling leaves
// untouched.
func TestMetamorphicTimeScaling(t *testing.T) {
	var runner Runner
	prop := func(seedRaw int64, nRaw uint8, uRaw uint16, eRaw uint8) bool {
		n := int(nRaw%7) + 2
		u := 0.1 + 0.85*float64(uRaw)/65535
		k := math.Ldexp(1, int(eRaw%7)-3) // 2^-3 .. 2^3
		ts, err := drawSet(seedRaw, n, u)
		if err != nil {
			return true // generator rejected the draw; nothing to test
		}
		scaled := make([]task.Task, ts.Len())
		for i := range scaled {
			orig := ts.Task(i)
			scaled[i] = task.Task{Name: orig.Name, Period: orig.Period * k, WCET: orig.WCET * k}
		}
		tsScaled, err := task.NewSet(scaled...)
		if err != nil {
			t.Logf("scaled set rejected: %v", err)
			return false
		}
		horizon := math.Min(8*ts.MaxPeriod(), 2000)
		for _, name := range metamorphicPolicies {
			base, err := runner.Run(Config{
				Tasks: ts, Machine: machine.Machine1(), Policy: mustCore(t, name),
				Exec: task.ConstantFraction{C: 0.75}, Horizon: horizon,
			})
			if err != nil {
				t.Logf("%s base run: %v", name, err)
				return false
			}
			baseNorm := base.TotalEnergy
			baseCycles := base.CyclesDone
			baseMisses := base.MissCount()
			res, err := runner.Run(Config{
				Tasks: tsScaled, Machine: machine.Machine1(), Policy: mustCore(t, name),
				Exec: task.ConstantFraction{C: 0.75}, Horizon: horizon * k,
			})
			if err != nil {
				t.Logf("%s scaled run: %v", name, err)
				return false
			}
			// Energy and cycles are time integrals: both scale by exactly k.
			if res.TotalEnergy != baseNorm*k || res.CyclesDone != baseCycles*k {
				t.Logf("%s: scaling by %v changed energy %v -> %v (want %v) cycles %v -> %v (want %v)",
					name, k, baseNorm, res.TotalEnergy, baseNorm*k,
					baseCycles, res.CyclesDone, baseCycles*k)
				return false
			}
			// Discrete outcomes are scale-free.
			if res.MissCount() != baseMisses || res.Releases != base.Releases ||
				res.Completions != base.Completions || res.Switches != base.Switches ||
				res.Preemptions != base.Preemptions {
				t.Logf("%s: scaling by %v changed discrete outcomes", name, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMetamorphicTaskPermutation: the simulator must not care how the
// task set is ordered. Permuting the tasks yields a Result identical in
// every field once task indices are mapped back through the permutation —
// bit-identical floats, not approximately equal. Execution models whose
// draws are consumed in task order (UniformFraction) are excluded: a
// permutation legitimately reassigns their randomness.
func TestMetamorphicTaskPermutation(t *testing.T) {
	var runner Runner
	prop := func(seedRaw int64, nRaw uint8, uRaw uint16, permSeed int64) bool {
		n := int(nRaw%7) + 2
		u := 0.1 + 0.85*float64(uRaw)/65535
		ts, err := drawSet(seedRaw, n, u)
		if err != nil {
			return true
		}
		perm := rand.New(rand.NewSource(permSeed)).Perm(ts.Len())
		shuffled := make([]task.Task, ts.Len())
		for i, j := range perm {
			shuffled[j] = ts.Task(i) // original task i lands at index j
		}
		tsPerm, err := task.NewSet(shuffled...)
		if err != nil {
			t.Logf("permuted set rejected: %v", err)
			return false
		}
		horizon := math.Min(8*ts.MaxPeriod(), 2000)
		for _, name := range metamorphicPolicies {
			base, err := runner.Run(Config{
				Tasks: ts, Machine: machine.Machine2(), Policy: mustCore(t, name),
				Exec: task.ConstantFraction{C: 0.8}, Horizon: horizon,
			})
			if err != nil {
				t.Logf("%s base run: %v", name, err)
				return false
			}
			baseClone := base.Clone()
			res, err := runner.Run(Config{
				Tasks: tsPerm, Machine: machine.Machine2(), Policy: mustCore(t, name),
				Exec: task.ConstantFraction{C: 0.8}, Horizon: horizon,
			})
			if err != nil {
				t.Logf("%s permuted run: %v", name, err)
				return false
			}
			if !resultsEqualUnderPermutation(t, name, baseClone, res, perm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// resultsEqualUnderPermutation compares two results field by field,
// mapping task indices of the base result through perm. Floats must
// match on their bit patterns.
func resultsEqualUnderPermutation(t *testing.T, name string, base, res *Result, perm []int) bool {
	t.Helper()
	bits := math.Float64bits
	scalarsOK := bits(base.TotalEnergy) == bits(res.TotalEnergy) &&
		bits(base.ExecEnergy) == bits(res.ExecEnergy) &&
		bits(base.IdleEnergy) == bits(res.IdleEnergy) &&
		bits(base.CyclesDone) == bits(res.CyclesDone) &&
		bits(base.BusyTime) == bits(res.BusyTime) &&
		bits(base.IdleTime) == bits(res.IdleTime) &&
		bits(base.HaltTime) == bits(res.HaltTime) &&
		base.Switches == res.Switches &&
		base.Releases == res.Releases &&
		base.Completions == res.Completions &&
		base.Events == res.Events &&
		base.Preemptions == res.Preemptions &&
		base.Guaranteed == res.Guaranteed
	if !scalarsOK {
		t.Logf("%s: scalar fields differ under permutation:\nbase: %+v\nperm: %+v", name, base, res)
		return false
	}
	if len(base.Misses) != len(res.Misses) {
		t.Logf("%s: miss counts differ: %d vs %d", name, len(base.Misses), len(res.Misses))
		return false
	}
	// Misses are recorded in deadline order, which the permutation
	// preserves; only the task index needs remapping.
	for i, m := range base.Misses {
		want := Miss{Task: perm[m.Task], Inv: m.Inv, Deadline: m.Deadline, Remaining: m.Remaining}
		got := res.Misses[i]
		if got.Task != want.Task || got.Inv != want.Inv ||
			bits(got.Deadline) != bits(want.Deadline) || bits(got.Remaining) != bits(want.Remaining) {
			t.Logf("%s: miss %d differs: %+v vs %+v", name, i, got, want)
			return false
		}
	}
	for i := range base.PerTask {
		b, r := base.PerTask[i], res.PerTask[perm[i]]
		if b.Releases != r.Releases || b.Completions != r.Completions || b.Misses != r.Misses ||
			bits(b.Cycles) != bits(r.Cycles) || bits(b.MaxResponse) != bits(r.MaxResponse) {
			t.Logf("%s: task %d stats differ: %+v vs %+v", name, i, b, r)
			return false
		}
	}
	if len(base.PointResTime) != len(res.PointResTime) {
		t.Logf("%s: residency map sizes differ", name)
		return false
	}
	for op, d := range base.PointResTime {
		if bits(res.PointResTime[op]) != bits(d) {
			t.Logf("%s: residency at %v differs: %v vs %v", name, op, res.PointResTime[op], d)
			return false
		}
	}
	return true
}
