package sim

import (
	"strconv"

	"rtdvs/internal/machine"
	"rtdvs/internal/obs"
)

// Metrics aggregates run outcomes into an obs registry. All instruments
// are registered at construction — including one frequency-residency
// counter per operating point of the machine the Metrics was built for —
// so the per-run observe step is a handful of atomic adds, allocation
// free, and safe to share across Runners on different goroutines.
//
// Observation happens once per *successful* run, after the event loop
// finishes, fed from the same dense residency buffers the Result is
// folded from: the hot path is untouched and golden traces stay
// bit-identical whether or not a Metrics is attached.
type Metrics struct {
	spec *machine.Spec

	runs        *obs.Counter
	events      *obs.Counter
	releases    *obs.Counter
	completions *obs.Counter
	preemptions *obs.Counter
	misses      *obs.Counter
	switches    *obs.Counter
	execEnergy  *obs.Counter
	idleEnergy  *obs.Counter

	// residencyCycles[i] corresponds to spec.Points[i]; cycles rather
	// than seconds so the paper's frequency-residency figures (cycles
	// completed at each point, Section 5) fall straight out of a scrape.
	residencyCycles []*obs.Counter
	residencyTime   []*obs.Counter
}

// NewMetrics registers the simulator's observables on reg for runs on
// the given machine. Runs on a different machine spec still count, but
// only points present in this spec accumulate residency.
func NewMetrics(reg *obs.Registry, spec *machine.Spec) *Metrics {
	m := &Metrics{
		spec: spec,
		runs: reg.Counter("rtdvs_sim_runs_total",
			"Simulation runs completed successfully."),
		events: reg.Counter("rtdvs_sim_events_total",
			"Event-loop iterations processed."),
		releases: reg.Counter("rtdvs_sim_releases_total",
			"Task invocations released."),
		completions: reg.Counter("rtdvs_sim_completions_total",
			"Task invocations completed by their deadline."),
		preemptions: reg.Counter("rtdvs_sim_preemptions_total",
			"Context switches that displaced a still-active task."),
		misses: reg.Counter("rtdvs_sim_misses_total",
			"Deadline misses recorded."),
		switches: reg.Counter("rtdvs_sim_switches_total",
			"Operating-point transitions performed."),
		execEnergy: reg.Counter("rtdvs_sim_exec_energy_total",
			"Execution energy charged, in cycle-V^2 units."),
		idleEnergy: reg.Counter("rtdvs_sim_idle_energy_total",
			"Idle energy charged, in cycle-V^2 units."),
	}
	m.residencyCycles = make([]*obs.Counter, len(spec.Points))
	m.residencyTime = make([]*obs.Counter, len(spec.Points))
	for i, p := range spec.Points {
		labels := []string{
			"machine", spec.Name,
			"freq", strconv.FormatFloat(p.Freq, 'g', -1, 64),
			"voltage", strconv.FormatFloat(p.Voltage, 'g', -1, 64),
		}
		m.residencyCycles[i] = reg.Counter("rtdvs_sim_residency_cycles_total",
			"Cycles spent at each operating point (frequency residency).", labels...)
		m.residencyTime[i] = reg.Counter("rtdvs_sim_residency_time_total",
			"Simulated milliseconds spent at each operating point.", labels...)
	}
	return m
}

// observe folds one finished run into the counters. resTime is the
// runner's dense per-point residency buffer, aligned with
// cfg.Machine.Points; it is read, never retained.
func (m *Metrics) observe(res *Result, resTime []float64, spec *machine.Spec) {
	m.runs.Inc()
	m.events.Add(float64(res.Events))
	m.releases.Add(float64(res.Releases))
	m.completions.Add(float64(res.Completions))
	m.preemptions.Add(float64(res.Preemptions))
	m.misses.Add(float64(len(res.Misses)))
	m.switches.Add(float64(res.Switches))
	m.execEnergy.Add(res.ExecEnergy)
	m.idleEnergy.Add(res.IdleEnergy)
	if spec != m.spec || len(resTime) > len(m.residencyCycles) {
		// A run on a machine other than the one the instruments were
		// labeled for: residency indexes would lie, so skip them.
		return
	}
	for i, d := range resTime {
		if d > 0 {
			m.residencyTime[i].Add(d)
			m.residencyCycles[i].Add(d * spec.Points[i].Freq)
		}
	}
}
