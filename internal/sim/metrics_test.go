package sim

import (
	"strings"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
	"rtdvs/internal/obs"
	"rtdvs/internal/task"
)

func metricsConfig(t *testing.T, policy string) Config {
	t.Helper()
	ts, err := task.NewSet(
		task.Task{Period: 8, WCET: 3},
		task.Task{Period: 12, WCET: 3},
		task.Task{Period: 20, WCET: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Tasks: ts, Machine: machine.Machine1(), Policy: pol, Horizon: 400}
}

// TestMetricsMatchResult runs the same configuration with and without a
// Metrics attached: the Results must be identical, and the counters must
// equal the Result's own fields.
func TestMetricsMatchResult(t *testing.T) {
	bare, err := Run(metricsConfig(t, "ccEDF"))
	if err != nil {
		t.Fatal(err)
	}
	bare = bare.Clone()

	reg := obs.NewRegistry()
	spec := machine.Machine1()
	m := NewMetrics(reg, spec)
	cfg := metricsConfig(t, "ccEDF")
	cfg.Machine = spec
	cfg.Metrics = m
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.TotalEnergy != bare.TotalEnergy || res.Events != bare.Events ||
		res.Preemptions != bare.Preemptions || res.Switches != bare.Switches {
		t.Errorf("metrics changed the result: %+v vs %+v", res, bare)
	}
	checks := []struct {
		name string
		c    *obs.Counter
		want float64
	}{
		{"runs", m.runs, 1},
		{"events", m.events, float64(res.Events)},
		{"releases", m.releases, float64(res.Releases)},
		{"completions", m.completions, float64(res.Completions)},
		{"preemptions", m.preemptions, float64(res.Preemptions)},
		{"misses", m.misses, float64(len(res.Misses))},
		{"switches", m.switches, float64(res.Switches)},
	}
	for _, c := range checks {
		if got := c.c.Value(); got != c.want {
			t.Errorf("%s counter = %v, want %v", c.name, got, c.want)
		}
	}
	if got := m.execEnergy.Value(); fpx.Ne(got, res.ExecEnergy) {
		t.Errorf("execEnergy counter = %v, want %v", got, res.ExecEnergy)
	}

	// Residency counters must reproduce PointResTime, point by point.
	var resTimeTotal float64
	for i, p := range spec.Points {
		want := res.PointResTime[p]
		if got := m.residencyTime[i].Value(); fpx.Ne(got, want) {
			t.Errorf("residency time[%d] = %v, want %v", i, got, want)
		}
		if got := m.residencyCycles[i].Value(); fpx.Ne(got, want*p.Freq) {
			t.Errorf("residency cycles[%d] = %v, want %v", i, got, want*p.Freq)
		}
		resTimeTotal += m.residencyTime[i].Value()
	}
	if fpx.Ne(resTimeTotal, res.BusyTime+res.IdleTime) {
		t.Errorf("residency time sums to %v, want busy+idle %v", resTimeTotal, res.BusyTime+res.IdleTime)
	}

	// And the whole registry must render as valid exposition text.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateText([]byte(sb.String())); err != nil {
		t.Fatalf("sim metrics scrape invalid: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), `rtdvs_sim_residency_cycles_total{machine="machine1"`) {
		t.Errorf("residency family missing machine label:\n%s", sb.String())
	}
}

// TestMetricsAccumulateAcrossRuns checks counters add up over a reused
// Runner and that a failed run contributes nothing.
func TestMetricsAccumulateAcrossRuns(t *testing.T) {
	reg := obs.NewRegistry()
	spec := machine.Machine1()
	m := NewMetrics(reg, spec)
	r := NewRunner()
	var wantEvents float64
	for i := 0; i < 3; i++ {
		cfg := metricsConfig(t, "laEDF")
		cfg.Machine = spec
		cfg.Metrics = m
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantEvents += float64(res.Events)
	}
	if got := m.runs.Value(); got != 3 {
		t.Errorf("runs = %v, want 3", got)
	}
	if got := m.events.Value(); got != wantEvents {
		t.Errorf("events = %v, want %v", got, wantEvents)
	}

	// An invalid config errors out before observation.
	bad := metricsConfig(t, "laEDF")
	bad.Machine = &machine.Spec{Name: "broken"}
	bad.Metrics = m
	if _, err := r.Run(bad); err == nil {
		t.Fatal("broken machine accepted")
	}
	if got := m.runs.Value(); got != 3 {
		t.Errorf("failed run was observed: runs = %v", got)
	}
}

// TestPreemptionCounting pins the preemption counter on a hand-checked
// two-task schedule: T1=(period 10, wcet 6), T2=(period 25, wcet 9),
// full WCET, no DVS. Under EDF, T2's first invocation runs in T1's slack
// and is displaced at t=10 and t=20 by T1's earlier deadlines.
func TestPreemptionCounting(t *testing.T) {
	ts, err := task.NewSet(task.Task{Period: 10, WCET: 6}, task.Task{Period: 25, WCET: 9})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.ByName("none")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Tasks: ts, Machine: machine.Machine1(), Policy: pol, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: T1 runs [0,6), T2 [6,10) — preempted by T1 [10,16) — T2
	// [16,20) — preempted by T1 [20,26) — T2 finishes [26,27). Second T2
	// invocation at t=25 runs [27,36) inside T1's slack: no further
	// preemption before t=50 (T1 releases at 30 and 40 find T2... T2
	// deadline 50 vs T1 deadline 40: T1 wins at t=30, preempting T2).
	if res.Preemptions < 2 {
		t.Errorf("preemptions = %d, want at least the two hand-checked displacements", res.Preemptions)
	}
	if res.MissCount() != 0 {
		t.Errorf("unexpected misses: %+v", res.Misses)
	}
	if res.Events <= 0 {
		t.Error("events counter never advanced")
	}
}
