package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// Multi-core simulation. Two execution models cover the multiprocessor
// design space of Nélis et al.:
//
// Partitioned (first-fit or worst-fit decreasing): tasks are statically
// assigned to cores, and each core is an independent uniprocessor EDF/RM
// problem with its own policy instance — so each core runs on the
// existing scalar engine, unmodified. At m = 1 the partition is the
// identity and the sub-problem IS the original problem: single-core
// MultiRunner results are bit-identical to the scalar Runner by
// construction, which the m=1 regression suite pins.
//
// Global: one system-wide EDF queue whose m earliest-deadline jobs
// occupy the m cores, jobs migrate freely, and a single gang policy
// drives the shared voltage/frequency rail. This mode runs on its own
// event loop (multiSim below) with deterministic cross-core
// tie-breaking: picks in (deadline, task index) order, sticky-core
// placement, remaining jobs to the lowest-indexed free core.

// execSeedStride separates the per-core execution-model seeds of a
// partitioned run. Each core's model is seeded from the run seed plus
// stride × (the core's first original task index), so the seed travels
// with the sub-set — relabeling cores cannot change any draw — and core
// 0 of a single-core run gets exactly cfg.Seed, the scalar parity case.
const execSeedStride = 1_000_003

// MultiConfig describes one multi-core simulation run. The core count
// comes from Machine.NumCores; Placement selects the execution model.
//
// Unlike the scalar Config, the policy and execution model are given by
// name/spec rather than instance: a partitioned run needs one policy
// instance and one execution-model instance per core, which the runner
// constructs (via core.ExtendedByName and task.ParseExec) so no state
// is ever shared across cores.
type MultiConfig struct {
	// Tasks is the periodic task set, indexed system-wide.
	Tasks *task.Set
	// Machine is the platform; NumCores cores share its point table.
	Machine *machine.Spec
	// Policy names the per-core policy (partitioned) or the gang policy
	// (global) — any name core.ExtendedByName resolves.
	Policy string
	// Placement selects partitioned-ff (default), partitioned-wf, or
	// global scheduling.
	Placement sched.Placement
	// Exec is the execution-model spec for task.ParseExec ("" = "wcet").
	Exec string
	// Seed seeds stateful execution models (see execSeedStride).
	Seed int64
	// Horizon is the simulated duration in ms; 0 selects 20 × the
	// longest period.
	Horizon float64
	// Overhead optionally models operating-point switch stop intervals.
	Overhead *machine.SwitchOverhead
	// Recorder optionally captures the execution trace. Only single-core
	// partitioned runs support it (a multi-core trace would interleave
	// per-core segments with clashing task indexes).
	Recorder *trace.Recorder
	// CheckInvariants enables the runtime invariant checkers; always on
	// under `go test`.
	CheckInvariants bool
	// Metrics optionally accumulates rtdvs_core_* observables once per
	// successful run.
	Metrics *MultiMetrics
	// Partition overrides the computed task-to-core assignment
	// (partitioned placements only). Used by the metamorphic tests to
	// relabel cores; must assign every task to a core in [0, NumCores).
	Partition *sched.Partition
}

// CoreStats aggregates one core's outcomes within a multi-core run.
type CoreStats struct {
	// Tasks lists the original task indexes assigned to this core
	// (partitioned runs; nil under global scheduling, where jobs
	// migrate).
	Tasks []int `json:"tasks,omitempty"`
	// Util is the worst-case utilization packed onto this core
	// (partitioned runs).
	Util        float64 `json:"util"`
	ExecEnergy  float64 `json:"execEnergy"`
	IdleEnergy  float64 `json:"idleEnergy"`
	CyclesDone  float64 `json:"cyclesDone"`
	BusyTime    float64 `json:"busyTime"`
	IdleTime    float64 `json:"idleTime"`
	HaltTime    float64 `json:"haltTime"`
	Switches    int     `json:"switches"`
	Releases    int     `json:"releases"`
	Completions int     `json:"completions"`
	Misses      int     `json:"misses"`
}

// MultiResult reports the outcome of a multi-core run. Times (BusyTime,
// IdleTime, HaltTime) are core-milliseconds — summed across cores — so
// BusyTime + IdleTime + HaltTime ≈ Cores × Horizon; at m = 1 every
// field coincides with the scalar Result's. Scalar totals are folded in
// a canonical core order (ascending first-assigned-task index) so they
// are bit-identical under core relabeling.
type MultiResult struct {
	Policy    string  `json:"policy"`
	Placement string  `json:"placement"`
	Cores     int     `json:"cores"`
	Horizon   float64 `json:"horizon"`

	ExecEnergy  float64 `json:"execEnergy"`
	IdleEnergy  float64 `json:"idleEnergy"`
	TotalEnergy float64 `json:"totalEnergy"`
	CyclesDone  float64 `json:"cyclesDone"`
	BusyTime    float64 `json:"busyTime"`
	IdleTime    float64 `json:"idleTime"`
	HaltTime    float64 `json:"haltTime"`
	Switches    int     `json:"switches"`
	Releases    int     `json:"releases"`
	Completions int     `json:"completions"`
	Events      int     `json:"events"`
	Preemptions int     `json:"preemptions"`
	// Migrations counts jobs resuming on a different core than they last
	// ran on (global scheduling only; partitioned jobs never migrate).
	Migrations int `json:"migrations"`
	// Misses holds every deadline miss with system-wide task indexes,
	// sorted by (Deadline, Task, Inv).
	Misses []Miss `json:"misses,omitempty"`
	// Guaranteed reports whether the admission test held at full speed:
	// a feasible partition with every per-core policy guaranteeing its
	// sub-set (partitioned), or the gang policy's global test (global).
	Guaranteed bool `json:"guaranteed"`
	// Feasible reports whether the placement admits the set at full
	// speed at all: per-core utilizations ≤ 1 (partitioned) or the
	// sufficient global-EDF test (global). An infeasible run still
	// executes and degrades by missing deadlines.
	Feasible bool        `json:"feasible"`
	PerTask  []TaskStats `json:"perTask"`
	PerCore  []CoreStats `json:"perCore"`
}

// AvgPower returns the average platform power (all cores) over the run.
func (r *MultiResult) AvgPower() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.TotalEnergy / r.Horizon
}

// MissCount returns the number of deadline misses.
func (r *MultiResult) MissCount() int { return len(r.Misses) }

// Clone returns a deep copy of r that remains valid after the
// MultiRunner that produced r is reused.
func (r *MultiResult) Clone() *MultiResult {
	c := *r
	if r.Misses != nil {
		c.Misses = append([]Miss(nil), r.Misses...)
	}
	if r.PerTask != nil {
		c.PerTask = append([]TaskStats(nil), r.PerTask...)
	}
	if r.PerCore != nil {
		c.PerCore = append([]CoreStats(nil), r.PerCore...)
		for i := range c.PerCore {
			if ts := c.PerCore[i].Tasks; ts != nil {
				c.PerCore[i].Tasks = append([]int(nil), ts...)
			}
		}
	}
	return &c
}

// MultiCanceled is the multi-core counterpart of Canceled: the context
// ended before the horizon and Partial carries whatever completed.
// For a partitioned run, cores are simulated in ascending index order
// and Partial folds every core finished before the cancellation plus
// the interrupted core's partial progress.
type MultiCanceled struct {
	// At is the simulated time (ms) the interrupted core had reached.
	At float64
	// Partial aliases the MultiRunner's buffers, like a completed
	// result; use MultiResult.Clone to retain it.
	Partial *MultiResult
	// Cause is the context's error.
	Cause error
}

// Error implements error.
func (e *MultiCanceled) Error() string {
	return fmt.Sprintf("sim: multi-core run cancelled at t=%g of horizon %g: %v",
		e.At, e.Partial.Horizon, e.Cause)
}

// Unwrap returns the context error the cancellation traces to.
func (e *MultiCanceled) Unwrap() error { return e.Cause }

// MultiRunner executes multi-core runs back to back, reusing the
// per-core scalar Runners, cached policy instances, and the global
// engine's buffers across runs. Not safe for concurrent use. The
// returned MultiResult aliases the runner's buffers and is valid until
// the next Run call; use Clone to retain one.
type MultiRunner struct {
	subs []*Runner // per-core scalar runners (partitioned mode)

	// Per-core policy instances, cached by name: Attach resets all
	// policy state, so instances are reusable across sequential runs.
	pols    []core.Policy
	polName string

	g   multiSim // global-EDF gang engine state
	res MultiResult

	subTasks []task.Task // scratch: per-core sub-set construction
	coreIdx  []int       // scratch: canonical core fold order
}

// NewMultiRunner returns an empty MultiRunner; buffers grow on first
// use.
func NewMultiRunner() *MultiRunner { return &MultiRunner{} }

// RunMulti executes the configuration on a fresh MultiRunner.
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	return NewMultiRunner().Run(cfg)
}

// RunMultiContext executes the configuration on a fresh MultiRunner
// under ctx.
func RunMultiContext(ctx context.Context, cfg MultiConfig) (*MultiResult, error) {
	return NewMultiRunner().RunContext(ctx, cfg)
}

// Run executes one multi-core configuration, reusing the runner's
// buffers.
func (r *MultiRunner) Run(cfg MultiConfig) (*MultiResult, error) {
	return r.run(nil, cfg)
}

// RunContext is Run with cooperative cancellation: when ctx ends before
// the horizon it returns a *MultiCanceled carrying the partial result.
func (r *MultiRunner) RunContext(ctx context.Context, cfg MultiConfig) (*MultiResult, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	return r.run(ctx, cfg)
}

// run validates the configuration and dispatches to the placement's
// execution model.
func (r *MultiRunner) run(ctx context.Context, cfg MultiConfig) (*MultiResult, error) {
	m, err := validateMulti(&cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Placement == sched.Global {
		return r.runGlobal(ctx, cfg, m)
	}
	return r.runPartitioned(ctx, cfg, m)
}

// validateMulti checks the placement-independent parts of a MultiConfig,
// applies the default horizon in place, and returns the core count. Both
// MultiRunner and the batched multi-core path share it.
func validateMulti(cfg *MultiConfig) (int, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return 0, task.ErrEmptySet
	}
	if cfg.Machine == nil {
		return 0, fmt.Errorf("sim: nil machine spec")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return 0, err
	}
	if cfg.Policy == "" {
		return 0, fmt.Errorf("sim: empty policy name")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 20 * cfg.Tasks.MaxPeriod()
	}
	m := cfg.Machine.NumCores()
	if cfg.Recorder != nil && (m > 1 || cfg.Placement == sched.Global) {
		return 0, fmt.Errorf("sim: trace recording requires a single-core partitioned run, got %d cores (%v)", m, cfg.Placement)
	}
	if cfg.Placement == sched.Global && cfg.Partition != nil {
		return 0, fmt.Errorf("sim: placement %v has no static partition", sched.Global)
	}
	return m, nil
}

// resolvePartition returns the task-to-core assignment for a partitioned
// run: the validated override when one is given, the placement's packing
// otherwise.
func resolvePartition(cfg MultiConfig, m int) (sched.Partition, error) {
	if cfg.Partition == nil {
		return sched.PartitionFor(cfg.Placement, cfg.Tasks, m)
	}
	part := *cfg.Partition
	if part.Cores != m {
		return part, fmt.Errorf("sim: partition override covers %d cores, machine has %d", part.Cores, m)
	}
	if len(part.Assign) != cfg.Tasks.Len() {
		return part, fmt.Errorf("sim: partition override assigns %d tasks, set has %d", len(part.Assign), cfg.Tasks.Len())
	}
	for i, c := range part.Assign {
		if c < 0 || c >= m {
			return part, fmt.Errorf("sim: partition override sends task %d to core %d, want [0, %d)", i, c, m)
		}
	}
	return part, nil
}

// polFor returns the i-th cached policy instance for name, rebuilding
// the cache when the name changes. Attach (called by the scalar Runner
// or the global engine) resets all instance state, so reuse is safe.
func (r *MultiRunner) polFor(name string, i int) (core.Policy, error) {
	if name != r.polName {
		r.pols = r.pols[:0]
		r.polName = name
	}
	for len(r.pols) <= i {
		p, err := core.ExtendedByName(name)
		if err != nil {
			return nil, err
		}
		r.pols = append(r.pols, p)
	}
	return r.pols[i], nil
}

// subRunner returns the i-th per-core scalar Runner, growing the pool
// on first use.
func (r *MultiRunner) subRunner(i int) *Runner {
	for len(r.subs) <= i {
		r.subs = append(r.subs, NewRunner())
	}
	return r.subs[i]
}

// resetResult initializes the reusable MultiResult for a new run.
func (r *MultiRunner) resetResult(cfg MultiConfig, m int) *MultiResult {
	res := &r.res
	*res = MultiResult{
		Policy:    cfg.Policy,
		Placement: cfg.Placement.String(),
		Cores:     m,
		Horizon:   cfg.Horizon,
		Misses:    res.Misses[:0],
		PerTask:   growZeroed(res.PerTask, cfg.Tasks.Len()),
		PerCore:   growZeroed(res.PerCore, m),
	}
	for c := range res.PerCore {
		res.PerCore[c].Tasks = res.PerCore[c].Tasks[:0]
	}
	return res
}

// sortMisses orders the merged miss list by (Deadline, Task, Inv) — a
// strict total order (an invocation misses at most once), so the merged
// order is unique regardless of which core contributed which miss. A
// single-core run's chronological miss order already satisfies it, so
// the m=1 fold is a no-op re-sort.
func sortMisses(ms []Miss) {
	// Insertion sort: miss lists are short, usually empty, and the fold
	// must stay allocation-free (sort.Slice's closure escapes).
	for i := 1; i < len(ms); i++ {
		v := ms[i]
		j := i
		for j > 0 && missBefore(v, ms[j-1]) {
			ms[j] = ms[j-1]
			j--
		}
		ms[j] = v
	}
}

// missBefore is the (Deadline, Task, Inv) order sortMisses applies.
func missBefore(x, y Miss) bool {
	switch {
	//rtdvs:ignore floatcmp deadlines coincide only when bit-equal (same release arithmetic); a tolerant Ne breaks the strict weak order
	case x.Deadline != y.Deadline:
		return x.Deadline < y.Deadline
	case x.Task != y.Task:
		return x.Task < y.Task
	}
	return x.Inv < y.Inv
}

// --- partitioned execution ---

// runPartitioned reduces the m-core problem to per-core scalar runs and
// folds their results.
func (r *MultiRunner) runPartitioned(ctx context.Context, cfg MultiConfig, m int) (*MultiResult, error) {
	ts := cfg.Tasks
	n := ts.Len()

	part, err := resolvePartition(cfg, m)
	if err != nil {
		return nil, err
	}

	res := r.resetResult(cfg, m)
	res.Feasible = partFeasible(ts, part, m)
	res.Guaranteed = res.Feasible

	// Fill per-core task lists and utilizations from the assignment.
	for i := 0; i < n; i++ {
		c := part.Assign[i]
		pc := &res.PerCore[c]
		pc.Tasks = append(pc.Tasks, i)
		pc.Util += ts.Task(i).Utilization()
	}

	// Canonical fold order: non-empty cores by ascending first task
	// index, then empty cores by core index. Relabeling cores permutes
	// core indexes but not this order, so every float accumulation below
	// is bit-identical under relabeling.
	r.coreIdx = r.coreIdx[:0]
	for c := 0; c < m; c++ {
		if len(res.PerCore[c].Tasks) > 0 {
			r.coreIdx = append(r.coreIdx, c)
		}
	}
	sort.Slice(r.coreIdx, func(a, b int) bool {
		return res.PerCore[r.coreIdx[a]].Tasks[0] < res.PerCore[r.coreIdx[b]].Tasks[0]
	})
	for c := 0; c < m; c++ {
		if len(res.PerCore[c].Tasks) == 0 {
			r.coreIdx = append(r.coreIdx, c)
		}
	}

	// Simulate each core in canonical order, folding as we go so a
	// cancellation still returns a consistent prefix.
	var canceled *MultiCanceled
	for sub, c := range r.coreIdx {
		pc := &res.PerCore[c]
		if len(pc.Tasks) == 0 {
			// An unloaded core halts at the platform minimum for the
			// whole horizon.
			e := cfg.Machine.IdlePower(cfg.Machine.Min()) * cfg.Horizon
			pc.IdleEnergy = e
			pc.IdleTime = cfg.Horizon
			res.IdleEnergy += e
			res.IdleTime += cfg.Horizon
			continue
		}

		subSet, pol, exec, err := r.coreConfig(cfg, ts, pc.Tasks, m)
		if err != nil {
			return nil, err
		}
		scfg := Config{
			Tasks:           subSet,
			Machine:         cfg.Machine,
			Policy:          pol,
			Exec:            exec,
			Horizon:         cfg.Horizon,
			Overhead:        cfg.Overhead,
			Recorder:        cfg.Recorder, // nil unless m == 1
			CheckInvariants: cfg.CheckInvariants,
		}
		sres, err := r.subRunner(sub).RunContext(ctx, scfg)
		if err != nil {
			if cerr, ok := err.(*Canceled); ok {
				foldCore(res, pc, cerr.Partial, pc.Tasks)
				canceled = &MultiCanceled{At: cerr.At, Partial: res, Cause: cerr.Cause}
				break
			}
			return nil, fmt.Errorf("sim: core %d: %w", c, err)
		}
		if !sres.Guaranteed {
			res.Guaranteed = false
		}
		foldCore(res, pc, sres, pc.Tasks)
	}

	res.TotalEnergy = res.ExecEnergy + res.IdleEnergy
	sortMisses(res.Misses)
	if canceled != nil {
		return nil, canceled
	}
	if cfg.Metrics != nil {
		cfg.Metrics.observe(res)
	}
	return res, nil
}

// partFeasible reports whether every core's packed worst-case
// utilization passes the uniprocessor EDF bound — Partition.Feasible
// recomputed for an override that may not have set it.
func partFeasible(ts *task.Set, part sched.Partition, m int) bool {
	util := make([]float64, m)
	for i, c := range part.Assign {
		util[c] += ts.Task(i).Utilization()
	}
	for _, u := range util {
		if !fpx.Le(u, 1) {
			return false
		}
	}
	return true
}

// coreConfig builds core c's sub-problem: the sub-set over its assigned
// tasks (original order preserved; at m = 1 the original set is reused
// verbatim so scalar delegation is exact), a fresh-for-this-core policy
// instance, and an execution model seeded from the sub-set's first
// original task (see execSeedStride).
func (r *MultiRunner) coreConfig(cfg MultiConfig, ts *task.Set, coreTasks []int, m int) (*task.Set, core.Policy, task.ExecModel, error) {
	pol, err := r.polFor(cfg.Policy, coreTasks[0])
	if err != nil {
		return nil, nil, nil, err
	}
	seed := cfg.Seed + execSeedStride*int64(coreTasks[0])
	exec, err := task.ParseExec(cfg.Exec, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	if m == 1 {
		return ts, pol, exec, nil
	}
	r.subTasks = r.subTasks[:0]
	for _, i := range coreTasks {
		r.subTasks = append(r.subTasks, ts.Task(i))
	}
	subSet, err := task.NewSet(r.subTasks...)
	if err != nil {
		return nil, nil, nil, err
	}
	return subSet, pol, exec, nil
}

// foldCore accumulates one core's scalar result into the multi-core
// totals, remapping local task indexes back to system-wide ones.
func foldCore(res *MultiResult, pc *CoreStats, sres *Result, coreTasks []int) {
	pc.ExecEnergy = sres.ExecEnergy
	pc.IdleEnergy = sres.IdleEnergy
	pc.CyclesDone = sres.CyclesDone
	pc.BusyTime = sres.BusyTime
	pc.IdleTime = sres.IdleTime
	pc.HaltTime = sres.HaltTime
	pc.Switches = sres.Switches
	pc.Releases = sres.Releases
	pc.Completions = sres.Completions
	pc.Misses = len(sres.Misses)

	res.ExecEnergy += sres.ExecEnergy
	res.IdleEnergy += sres.IdleEnergy
	res.CyclesDone += sres.CyclesDone
	res.BusyTime += sres.BusyTime
	res.IdleTime += sres.IdleTime
	res.HaltTime += sres.HaltTime
	res.Switches += sres.Switches
	res.Releases += sres.Releases
	res.Completions += sres.Completions
	res.Events += sres.Events
	res.Preemptions += sres.Preemptions
	for li, gi := range coreTasks {
		res.PerTask[gi] = sres.PerTask[li]
	}
	for _, ms := range sres.Misses {
		res.Misses = append(res.Misses, Miss{
			Task: coreTasks[ms.Task], Inv: ms.Inv,
			Deadline: ms.Deadline, Remaining: ms.Remaining,
		})
	}
}

// --- global-EDF gang execution ---

// runGlobal executes the configuration on the global-EDF gang engine.
func (r *MultiRunner) runGlobal(ctx context.Context, cfg MultiConfig, m int) (*MultiResult, error) {
	pol, err := r.polFor(cfg.Policy, 0)
	if err != nil {
		return nil, err
	}
	if _, ok := pol.(core.GangPolicy); !ok {
		return nil, fmt.Errorf("sim: global placement needs a gang policy (one of gangStaticEDF, gangCCEDF, gangLAEDF), got %q", cfg.Policy)
	}
	exec, err := task.ParseExec(cfg.Exec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wireDistributions(pol, exec)
	if err := pol.Attach(cfg.Tasks, cfg.Machine); err != nil {
		return nil, err
	}

	res := r.resetResult(cfg, m)
	res.Guaranteed = pol.Guaranteed()
	res.Feasible = sched.GlobalEDFTest(cfg.Tasks, m, 1)

	g := &r.g
	g.init(cfg, pol, exec, m, res, ctx)
	g.run()
	if err := g.invErr; err != nil {
		return nil, err
	}
	sortMisses(res.Misses)
	if g.ctxErr != nil {
		return nil, &MultiCanceled{At: g.now, Partial: res, Cause: g.ctxErr}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.observe(res)
	}
	return res, nil
}

// multiSim is the global-EDF gang event loop: a shared release timer
// heap, one system-wide EDF ready queue, and m cores on one voltage
// rail. All state lives in reusable buffers. It implements core.System
// for the gang policy's callbacks.
type multiSim struct {
	cfg    MultiConfig
	pol    core.Policy
	exec   task.ExecModel
	ts     *task.Set
	m      int
	kind   sched.Kind
	states []taskState
	now    float64
	res    *MultiResult

	hw    machine.OperatingPoint
	hwIdx int
	sel   machine.PointSelector

	timers sched.ReadyQueue
	ready  sched.ReadyQueue

	due      []int // scratch: timer drain, replayed in ascending index order
	released []int // scratch: releases pending policy callbacks
	picks    []int // this segment's EDF picks, in (deadline, index) order
	lastRun  []int // previous segment's picks (for preemption counting)
	finished []int // scratch: completions this segment

	running  []int // per core: running task index, or -1
	taskCore []int // per task: core it last ran on, or -1

	checks bool // invariant checking enabled
	invErr error

	ctx     context.Context
	ctxTick int
	ctxErr  error
}

// init resets the engine for a new run.
func (g *multiSim) init(cfg MultiConfig, pol core.Policy, exec task.ExecModel, m int, res *MultiResult, ctx context.Context) {
	n := cfg.Tasks.Len()
	g.cfg = cfg
	g.pol = pol
	g.exec = exec
	g.ts = cfg.Tasks
	g.m = m
	g.kind = pol.Scheduler()
	g.states = growZeroed(g.states, n)
	g.now = 0
	g.res = res
	g.sel = cfg.Machine.Selector()
	g.timers.Reset(n)
	g.ready.Reset(n)
	g.due = g.due[:0]
	g.released = g.released[:0]
	g.picks = g.picks[:0]
	g.lastRun = g.lastRun[:0]
	g.finished = g.finished[:0]
	g.running = growZeroed(g.running, m)
	g.taskCore = growZeroed(g.taskCore, n)
	for i := range g.taskCore {
		g.taskCore[i] = -1
	}
	g.checks = cfg.CheckInvariants || testing.Testing()
	g.invErr = nil
	g.ctx = ctx
	g.ctxTick = 0
	g.ctxErr = nil

	for i := range g.states {
		phase := cfg.Tasks.Task(i).Phase
		g.states[i] = taskState{nextRelease: phase, nominalRel: phase, deadline: phase}
		g.timerAdd(i, phase)
	}
	g.hw = pol.Point()
	g.hwIdx = g.sel.Index(g.hw)
	g.checkPoint(g.hw)
}

// --- core.System ---

func (g *multiSim) Now() float64 { return g.now }

func (g *multiSim) Deadline(i int) float64 {
	st := &g.states[i]
	if st.active {
		return st.deadline
	}
	return st.nominalRel
}

// --- invariants ---

func (g *multiSim) failf(format string, args ...interface{}) {
	if g.invErr == nil {
		g.invErr = fmt.Errorf("sim: invariant violated at t=%g: %s",
			g.now, fmt.Sprintf(format, args...))
	}
}

func (g *multiSim) checkPoint(op machine.OperatingPoint) {
	if !g.checks || g.invErr != nil {
		return
	}
	for _, p := range g.cfg.Machine.Points {
		if p == op {
			return
		}
	}
	g.failf("policy %s selected operating point (f=%g, V=%g), which is not one of the machine's discrete points",
		g.pol.Name(), op.Freq, op.Voltage)
}

// checkOccupancy enforces the multi-core scheduling invariant: a core
// runs at most one job (structural: running is core-indexed) and a job
// runs on at most one core at any instant.
func (g *multiSim) checkOccupancy() {
	if !g.checks || g.invErr != nil {
		return
	}
	for a := 0; a < g.m; a++ {
		t := g.running[a]
		if t < 0 {
			continue
		}
		if !g.states[t].active {
			g.failf("inactive task %d scheduled on core %d", t, a)
			return
		}
		for b := a + 1; b < g.m; b++ {
			if g.running[b] == t {
				g.failf("task %d scheduled on cores %d and %d at once", t, a, b)
				return
			}
		}
	}
}

func (g *multiSim) checkUtilization() {
	if !g.checks || g.invErr != nil || !g.res.Guaranteed {
		return
	}
	if ur, ok := g.pol.(UtilizationReporter); ok {
		// A gang policy reserves aggregate utilization across m cores.
		if u := ur.ReservedUtilization(); fpx.Gt(u, float64(g.m)) {
			g.failf("policy %s reserves utilization %g > %d cores for an admitted task set",
				g.pol.Name(), u, g.m)
		}
	}
}

func (g *multiSim) checkMiss(i, inv int, deadline float64) {
	if !g.checks || g.invErr != nil {
		return
	}
	if g.res.Guaranteed {
		g.failf("task %d invocation %d missed its deadline %g under %s, which guaranteed the set",
			i, inv, deadline, g.pol.Name())
	}
}

// --- engine ---

//rtdvs:hotpath
func (g *multiSim) timerAdd(i int, at float64) {
	if err := g.timers.Push(i, at); err != nil {
		panic(err)
	}
}

//rtdvs:hotpath
func (g *multiSim) readyKey(i int) float64 {
	if g.kind == sched.RM {
		return g.ts.Task(i).Period
	}
	return g.states[i].deadline
}

//rtdvs:hotpath
func (g *multiSim) readyAdd(i int) {
	if err := g.ready.Push(i, g.readyKey(i)); err != nil {
		panic(err)
	}
}

//rtdvs:hotpath
func (g *multiSim) pollCtx() bool {
	if g.ctxTick--; g.ctxTick > 0 {
		return false
	}
	g.ctxTick = cancelCheckInterval
	if err := g.ctx.Err(); err != nil {
		g.ctxErr = err
		return true
	}
	return false
}

// processReleases is the scalar simulator's release processing on the
// shared timer heap: misses abort at the release that doubles as the
// deadline, due tasks replay in ascending index order, and the gang
// policy hears one OnRelease per released task.
//
//rtdvs:hotpath
func (g *multiSim) processReleases() {
	if !fpx.Le(g.timers.PeekKey(), g.now) {
		return
	}
	g.due = g.due[:0]
	for fpx.Le(g.timers.PeekKey(), g.now) {
		g.due = append(g.due, g.timers.Pop())
	}
	sortIndexes(g.due)
	g.released = g.released[:0]
	for _, i := range g.due {
		st := &g.states[i]
		for fpx.Le(st.nextRelease, g.now) {
			if st.active {
				g.res.Misses = append(g.res.Misses, Miss{
					Task: i, Inv: st.inv - 1, Deadline: st.deadline, Remaining: st.remaining,
				})
				g.res.PerTask[i].Misses++
				if c := g.taskCore[i]; c >= 0 {
					g.res.PerCore[c].Misses++
				}
				g.checkMiss(i, st.inv-1, st.deadline)
				st.active = false
				g.ready.Remove(i)
			}
			rel := st.nominalRel
			p := g.ts.Task(i)
			wcet := p.WCET
			c := g.exec.Cycles(i, st.inv, wcet)
			if c > wcet {
				c = wcet
			}
			if c <= 0 {
				c = math.SmallestNonzeroFloat64
			}
			st.remaining = c
			st.used = 0
			st.releasedAt = st.nextRelease
			st.deadline = rel + p.Period
			st.nominalRel = rel + p.Period
			st.nextRelease = st.nominalRel
			st.active = true
			st.inv++
			g.res.Releases++
			g.res.PerTask[i].Releases++
			g.readyAdd(i)
			g.released = append(g.released, i)
		}
		g.timerAdd(i, st.nextRelease)
	}
	for _, i := range g.released {
		g.pol.OnRelease(g, i)
	}
	if len(g.released) > 0 {
		g.checkUtilization()
	}
}

// switchTo moves the shared rail to the requested point. All m cores
// halt together through the stop interval (one rail, one transition —
// counted as one switch), so HaltTime accrues m core-milliseconds per
// millisecond of wall halt.
//
//rtdvs:hotpath
func (g *multiSim) switchTo(op machine.OperatingPoint) {
	if op == g.hw {
		return
	}
	var halt float64
	if g.cfg.Overhead != nil {
		halt = g.cfg.Overhead.Halt(g.hw, op)
	}
	g.res.Switches++
	if halt > 0 {
		end := math.Min(g.now+halt, g.cfg.Horizon)
		dur := end - g.now
		for c := 0; c < g.m; c++ {
			g.res.PerCore[c].HaltTime += dur
			g.res.HaltTime += dur
		}
		g.now = end
	}
	g.hw = op
	g.hwIdx = g.sel.Index(op)
	g.checkPoint(op)
}

// assign maps this segment's EDF picks onto cores: first pass keeps
// every pick on the core it last ran on when that core is free (sticky,
// in pick order), second pass sends the rest to the lowest-indexed free
// cores, counting migrations. Both passes walk picks in (deadline,
// index) order, so the assignment is a pure function of the engine
// state.
//
//rtdvs:hotpath
func (g *multiSim) assign() {
	for c := range g.running {
		g.running[c] = -1
	}
	for _, t := range g.picks {
		if c := g.taskCore[t]; c >= 0 && g.running[c] < 0 {
			g.running[c] = t
		}
	}
	next := 0
	for _, t := range g.picks {
		if c := g.taskCore[t]; c >= 0 && g.running[c] == t {
			continue
		}
		for g.running[next] >= 0 {
			next++
		}
		g.running[next] = t
		if g.taskCore[t] >= 0 {
			g.res.Migrations++
		}
		g.taskCore[t] = next
	}
}

// run is the main loop: process releases, pick the m earliest-deadline
// jobs, place them on cores, advance to the next event, account per-core
// energy, and deliver completions in ascending task-index order.
//
//rtdvs:hotpath
func (g *multiSim) run() {
	for fpx.Lt(g.now, g.cfg.Horizon) {
		if g.ctx != nil && g.pollCtx() {
			break
		}
		g.res.Events++
		g.processReleases()

		nextRel := math.Min(g.timers.PeekKey(), g.cfg.Horizon)

		if g.ready.Len() == 0 {
			// All cores idle until the next release at the policy's idle
			// point.
			op := g.pol.IdlePoint()
			g.switchTo(op)
			start := g.now
			end := math.Max(nextRel, g.now)
			if end > start {
				dur := end - start
				e := g.cfg.Machine.IdlePower(op) * dur
				for c := 0; c < g.m; c++ {
					g.res.PerCore[c].IdleEnergy += e
					g.res.PerCore[c].IdleTime += dur
					g.res.IdleEnergy += e
					g.res.IdleTime += dur
				}
				g.now = end
				g.checkEnergy()
			} else {
				g.now = nextRel
			}
			continue
		}

		op := g.pol.Point()
		g.switchTo(op)
		if fpx.Ge(g.now, g.cfg.Horizon) {
			break
		}
		if fpx.Le(g.timers.PeekKey(), g.now) {
			// A release became due during the stop interval.
			continue
		}
		nextRel = math.Min(g.timers.PeekKey(), g.cfg.Horizon)

		// Pick the m earliest-deadline jobs, ties by task index — pop
		// then restore, so pick order is exactly the heap order.
		k := g.ready.Len()
		if k > g.m {
			k = g.m
		}
		g.picks = g.picks[:0]
		for i := 0; i < k; i++ {
			g.picks = append(g.picks, g.ready.Pop())
		}
		for _, t := range g.picks {
			g.readyAdd(t)
		}

		// A job that ran last segment, is still active, and lost its
		// core was preempted by an earlier deadline.
		for _, t := range g.lastRun {
			if !g.states[t].active {
				continue // completed or aborted, not preempted
			}
			onCore := false
			for _, p := range g.picks {
				if p == t {
					onCore = true
					break
				}
			}
			if !onCore {
				g.res.Preemptions++
			}
		}

		g.assign()
		g.checkOccupancy()

		// Segment end: next release, horizon, or earliest finish among
		// the running jobs.
		end := nextRel
		for c := 0; c < g.m; c++ {
			t := g.running[c]
			if t < 0 {
				continue
			}
			if finish := g.now + g.states[t].remaining/g.hw.Freq; finish < end {
				end = finish
			}
		}
		dur := end - g.now

		// Execute the segment core by core in ascending core order.
		for c := 0; c < g.m; c++ {
			t := g.running[c]
			pc := &g.res.PerCore[c]
			if t < 0 {
				e := g.cfg.Machine.IdlePower(g.hw) * dur
				pc.IdleEnergy += e
				pc.IdleTime += dur
				g.res.IdleEnergy += e
				g.res.IdleTime += dur
				continue
			}
			st := &g.states[t]
			finish := g.now + st.remaining/g.hw.Freq
			cycles := dur * g.hw.Freq
			if cycles > st.remaining || fpx.Le(finish, end) {
				cycles = st.remaining
			}
			st.remaining -= cycles
			st.used += cycles
			e := cycles * g.hw.EnergyPerCycle()
			pc.CyclesDone += cycles
			pc.ExecEnergy += e
			pc.BusyTime += dur
			g.res.CyclesDone += cycles
			g.res.ExecEnergy += e
			g.res.BusyTime += dur
			g.res.PerTask[t].Cycles += cycles
			g.pol.OnExecute(t, cycles)
		}
		g.now = end
		g.checkEnergy()

		// Deliver completions in ascending task-index order.
		g.finished = g.finished[:0]
		for c := 0; c < g.m; c++ {
			t := g.running[c]
			if t >= 0 && fpx.Le(g.states[t].remaining, 0) {
				g.finished = append(g.finished, t)
			}
		}
		sortIndexes(g.finished)
		for _, t := range g.finished {
			st := &g.states[t]
			st.remaining = 0
			st.active = false
			g.ready.Remove(t)
			g.res.Completions++
			g.res.PerTask[t].Completions++
			if c := g.taskCore[t]; c >= 0 {
				g.res.PerCore[c].Completions++
				g.res.PerCore[c].Releases++ // invocation fully hosted: release credited where it completed
			}
			if resp := g.now - st.releasedAt; resp > g.res.PerTask[t].MaxResponse {
				g.res.PerTask[t].MaxResponse = resp
			}
			g.pol.OnCompletion(g, t, st.used)
		}
		if len(g.finished) > 0 {
			g.checkUtilization()
		}
		//rtdvs:ignore hotalloc reset-and-refill of g.lastRun reuses its backing array; no growth after the first poll
		g.lastRun = append(g.lastRun[:0], g.picks...)
	}
	g.res.TotalEnergy = g.res.ExecEnergy + g.res.IdleEnergy
	g.checkEnergy()
}

// checkEnergy verifies energy components stay non-negative and the
// total monotone — the scalar checker's conditions on the multi-core
// accumulators.
func (g *multiSim) checkEnergy() {
	if !g.checks || g.invErr != nil {
		return
	}
	if g.res.ExecEnergy < 0 || g.res.IdleEnergy < 0 {
		g.failf("negative energy component (exec=%g, idle=%g)",
			g.res.ExecEnergy, g.res.IdleEnergy)
	}
}
