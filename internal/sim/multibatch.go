package sim

import (
	"context"
	"fmt"

	"rtdvs/internal/core"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
)

// Batched multi-core execution. A partitioned multi-core run IS a set of
// independent uniprocessor runs, so RunMulti expands every partitioned
// item into one scalar lane per loaded core and executes ALL lanes of
// ALL items in a single lockstep pass — the batch engine's cross-lane
// locality applies across cores exactly as it does across sweep points.
// Global items need the migration-aware gang engine and run on embedded
// MultiRunners (one per such item, retained across batches), mirroring
// how the scalar batch falls back for fault/recorder lanes.

// multiBatch is the reusable expansion state behind BatchRunner.RunMulti.
type multiBatch struct {
	scalar  []Config          // expanded per-core lane configs
	owner   []int             // lane -> item index
	tasks   [][]int           // lane -> original task indexes (aliased from parts)
	parts   []sched.Partition // item -> resolved partition (partitioned items)
	cores   []int             // item -> core count
	laneOf  [][2]int          // item -> [first lane, lane count]
	results []MultiResult     // item result storage, reused
	out     []*MultiResult    // parallel output slice
	errs    []error           // parallel error slice
	globals map[int]*MultiRunner

	// pols hands out one fresh-or-reused policy instance per lane: the
	// batch engine rejects shared instances, and Attach resets state, so
	// pooling by name across runs is safe.
	pols    map[string][]core.Policy
	polUsed map[string]int

	subTasks []task.Task // scratch: sub-set construction
}

// polFor returns the next unused pooled instance of the named policy.
func (mb *multiBatch) polFor(name string) (core.Policy, error) {
	if mb.pols == nil {
		mb.pols = make(map[string][]core.Policy)
		mb.polUsed = make(map[string]int)
	}
	i := mb.polUsed[name]
	mb.polUsed[name] = i + 1
	pool := mb.pols[name]
	if i < len(pool) {
		return pool[i], nil
	}
	p, err := core.ExtendedByName(name)
	if err != nil {
		return nil, err
	}
	mb.pols[name] = append(pool, p)
	return p, nil
}

// RunMultiBatch executes the multi-core configurations on a fresh
// BatchRunner (see BatchRunner.RunMulti).
func RunMultiBatch(cfgs []MultiConfig) ([]*MultiResult, []error) {
	return NewBatchRunner().RunMulti(cfgs)
}

// RunMulti executes every multi-core configuration and returns parallel
// slices of per-item results and errors: results[i] is non-nil exactly
// when errs[i] is nil. Partitioned items are expanded into per-core
// scalar lanes and run in one lockstep pass; global items run on
// embedded gang engines. The results alias the BatchRunner's buffers
// and are valid until the next Run or RunMulti call; use
// MultiResult.Clone to retain one.
func (b *BatchRunner) RunMulti(cfgs []MultiConfig) ([]*MultiResult, []error) {
	return b.runMulti(nil, cfgs)
}

// RunMultiContext is RunMulti with cooperative cancellation: items
// interrupted before their horizon report a *MultiCanceled carrying the
// partial fold, like Runner and BatchRunner cancellation.
func (b *BatchRunner) RunMultiContext(ctx context.Context, cfgs []MultiConfig) ([]*MultiResult, []error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	return b.runMulti(ctx, cfgs)
}

func (b *BatchRunner) runMulti(ctx context.Context, cfgs []MultiConfig) ([]*MultiResult, []error) {
	mb := &b.mb
	k := len(cfgs)
	mb.results = growZeroed(mb.results, k)
	mb.out = growZeroed(mb.out, k)
	mb.errs = growZeroed(mb.errs, k)
	mb.parts = growZeroed(mb.parts, k)
	mb.cores = growZeroed(mb.cores, k)
	mb.laneOf = growZeroed(mb.laneOf, k)
	mb.scalar = mb.scalar[:0]
	mb.owner = mb.owner[:0]
	mb.tasks = mb.tasks[:0]
	for name := range mb.polUsed {
		mb.polUsed[name] = 0
	}
	out, errs := mb.out[:k], mb.errs[:k]
	for i := range out {
		out[i], errs[i] = nil, nil
	}

	// Expand: validate each item, resolve its partition, and emit one
	// scalar lane per loaded core.
	for i := range cfgs {
		cfg := cfgs[i] // copy; validateMulti defaults the horizon in place
		m, err := validateMulti(&cfg)
		if err != nil {
			errs[i] = err
			continue
		}
		cfgs[i].Horizon = cfg.Horizon // expose the default to the fold
		mb.cores[i] = m
		mb.laneOf[i] = [2]int{len(mb.scalar), 0}
		if cfg.Placement == sched.Global {
			continue // runs on its embedded gang engine below
		}
		part, err := resolvePartition(cfg, m)
		if err != nil {
			errs[i] = err
			continue
		}
		mb.parts[i] = part
		if err := b.expandItem(i, cfg, m, part); err != nil {
			errs[i] = err
			mb.scalar = mb.scalar[:mb.laneOf[i][0]] // drop this item's lanes
			mb.owner = mb.owner[:mb.laneOf[i][0]]
			mb.tasks = mb.tasks[:mb.laneOf[i][0]]
			mb.laneOf[i][1] = 0
		}
	}

	// One lockstep pass over every lane of every partitioned item.
	lres, lerrs := b.run(ctx, mb.scalar)

	// Fold each item's lanes back into a MultiResult.
	for i := range cfgs {
		if errs[i] != nil {
			continue
		}
		if cfgs[i].Placement == sched.Global {
			out[i], errs[i] = b.globalRunner(i).RunContext(ctx, cfgs[i])
			continue
		}
		out[i], errs[i] = mb.foldItem(i, cfgs[i], lres, lerrs)
	}
	return out, errs
}

// expandItem appends one scalar lane per loaded core of item i, in the
// canonical fold order (ascending first-assigned-task index).
func (b *BatchRunner) expandItem(i int, cfg MultiConfig, m int, part sched.Partition) error {
	mb := &b.mb
	ts := cfg.Tasks
	for first := 0; first < ts.Len(); first++ {
		c := part.Assign[first]
		// first is this core's lowest task index iff no earlier task
		// shares the core — the canonical order falls out of the task
		// walk itself.
		mine := false
		for j := 0; j < first; j++ {
			if part.Assign[j] == c {
				mine = true
				break
			}
		}
		if mine {
			continue
		}
		coreTasks := part.CoreTasks(c)
		pol, err := mb.polFor(cfg.Policy)
		if err != nil {
			return err
		}
		seed := cfg.Seed + execSeedStride*int64(first)
		exec, err := task.ParseExec(cfg.Exec, seed)
		if err != nil {
			return err
		}
		subSet := ts
		if m > 1 {
			mb.subTasks = mb.subTasks[:0]
			for _, t := range coreTasks {
				mb.subTasks = append(mb.subTasks, ts.Task(t))
			}
			subSet, err = task.NewSet(mb.subTasks...)
			if err != nil {
				return err
			}
		}
		mb.scalar = append(mb.scalar, Config{
			Tasks:           subSet,
			Machine:         cfg.Machine,
			Policy:          pol,
			Exec:            exec,
			Horizon:         cfg.Horizon,
			Overhead:        cfg.Overhead,
			Recorder:        cfg.Recorder, // nil unless m == 1
			CheckInvariants: cfg.CheckInvariants,
		})
		mb.owner = append(mb.owner, i)
		mb.tasks = append(mb.tasks, coreTasks)
		mb.laneOf[i][1]++
	}
	return nil
}

// foldItem merges item i's lane results into its MultiResult, exactly
// as MultiRunner.runPartitioned folds sequential per-core runs.
func (mb *multiBatch) foldItem(i int, cfg MultiConfig, lres []*Result, lerrs []error) (*MultiResult, error) {
	m := mb.cores[i]
	part := mb.parts[i]
	res := &mb.results[i]
	*res = MultiResult{
		Policy:    cfg.Policy,
		Placement: cfg.Placement.String(),
		Cores:     m,
		Horizon:   cfg.Horizon,
		Misses:    res.Misses[:0],
		PerTask:   growZeroed(res.PerTask, cfg.Tasks.Len()),
		PerCore:   growZeroed(res.PerCore, m),
	}
	for c := range res.PerCore {
		res.PerCore[c].Tasks = res.PerCore[c].Tasks[:0]
	}
	res.Feasible = partFeasible(cfg.Tasks, part, m)
	res.Guaranteed = res.Feasible
	for t := 0; t < cfg.Tasks.Len(); t++ {
		c := part.Assign[t]
		res.PerCore[c].Tasks = append(res.PerCore[c].Tasks, t)
		res.PerCore[c].Util += cfg.Tasks.Task(t).Utilization()
	}
	first, count := mb.laneOf[i][0], mb.laneOf[i][1]
	var canceled *MultiCanceled
	for l := first; l < first+count; l++ {
		coreTasks := mb.tasks[l]
		c := part.Assign[coreTasks[0]]
		pc := &res.PerCore[c]
		sres := lres[l]
		if err := lerrs[l]; err != nil {
			cerr, ok := err.(*Canceled)
			if !ok {
				return nil, fmt.Errorf("sim: core %d: %w", c, err)
			}
			// Fold the partial and keep going: under lockstep every
			// interrupted lane stopped at the same poll, so the fold
			// stays a consistent snapshot. Report the earliest At.
			sres = cerr.Partial
			if canceled == nil || cerr.At < canceled.At {
				if canceled == nil {
					canceled = &MultiCanceled{Partial: res}
				}
				canceled.At = cerr.At
				canceled.Cause = cerr.Cause
			}
		} else if !sres.Guaranteed {
			res.Guaranteed = false
		}
		foldCore(res, pc, sres, coreTasks)
	}
	// Unloaded cores halt at the platform minimum for the whole horizon.
	// They fold after the loaded cores, matching the sequential engine's
	// canonical order (empty cores last) so the float accumulations are
	// bit-identical across the two engines.
	for c := 0; c < m; c++ {
		if len(res.PerCore[c].Tasks) == 0 {
			e := cfg.Machine.IdlePower(cfg.Machine.Min()) * cfg.Horizon
			res.PerCore[c].IdleEnergy = e
			res.PerCore[c].IdleTime = cfg.Horizon
			res.IdleEnergy += e
			res.IdleTime += cfg.Horizon
		}
	}
	res.TotalEnergy = res.ExecEnergy + res.IdleEnergy
	sortMisses(res.Misses)
	if canceled != nil {
		return nil, canceled
	}
	if cfg.Metrics != nil {
		cfg.Metrics.observe(res)
	}
	return res, nil
}

// globalRunner returns item i's embedded gang engine, retained across
// batches like the scalar fallback runners.
func (b *BatchRunner) globalRunner(i int) *MultiRunner {
	if b.mb.globals == nil {
		b.mb.globals = make(map[int]*MultiRunner)
	}
	r, ok := b.mb.globals[i]
	if !ok {
		r = NewMultiRunner()
		b.mb.globals[i] = r
	}
	return r
}
