package sim

import (
	"math/rand"
	"testing"

	"rtdvs/internal/bound"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
)

// The multi-core conformance suite extends the paper's headline claim
// to m identical cores: averaged over seeded random task sets under
// partitioned-EDF, the policies order as
//
//	bound ≤ laEDF ≤ ccEDF ≤ staticEDF ≤ none
//
// in normalized energy, where the bound is the per-partition convex
// hull bound. The uniprocessor version lives in conformance_test.go;
// this file is the same experiment with the utilization axis scaled to
// the core count.

// multiConformancePoint holds sweep-averaged normalized energies at one
// total utilization.
type multiConformancePoint struct {
	u    float64
	norm map[string]float64
	bnd  float64
}

// multiConformanceSweep mirrors the multi-core experiment harness in
// miniature: `sets` seeded sets per utilization, every policy on the
// identical workload and partition, energies averaged then normalized
// by the no-DVS baseline.
func multiConformanceSweep(t *testing.T, cores int, seed int64, utils []float64, sets int, execSpec string) []multiConformancePoint {
	t.Helper()
	policies := []string{"none", "staticEDF", "ccEDF", "laEDF"}
	runner := NewMultiRunner()
	spec := machine.Machine0().WithCores(cores)
	points := make([]multiConformancePoint, 0, len(utils))
	for ui, u := range utils {
		sum := make(map[string]float64, len(policies))
		var bndSum float64
		for si := 0; si < sets; si++ {
			caseSeed := seed + int64(ui)*1_000_003 + int64(si)*7919
			g := task.Generator{N: 4 * cores, Utilization: u, Rand: rand.New(rand.NewSource(caseSeed))}
			ts, err := g.Generate()
			if err != nil {
				t.Fatal(err)
			}
			horizon := min(10*ts.MaxPeriod(), 3000)
			var coreCycles []float64
			for _, name := range policies {
				res, err := runner.Run(MultiConfig{
					Tasks:     ts,
					Machine:   spec,
					Policy:    name,
					Placement: sched.PartitionedWF,
					Exec:      execSpec,
					Seed:      caseSeed ^ 0x5DEECE66D,
					Horizon:   horizon,
				})
				if err != nil {
					t.Fatal(err)
				}
				sum[name] += res.TotalEnergy
				if res.Guaranteed && res.MissCount() > 0 {
					t.Fatalf("m=%d u=%.2f set %d: %s guaranteed the set but missed %d deadlines",
						cores, u, si, name, res.MissCount())
				}
				if name == "none" {
					coreCycles = make([]float64, len(res.PerCore))
					for c := range res.PerCore {
						coreCycles[c] = res.PerCore[c].CyclesDone
					}
				}
			}
			bnd, err := bound.PartitionedEnergy(spec, coreCycles, horizon)
			if err != nil {
				t.Fatal(err)
			}
			bndSum += bnd
		}
		pt := multiConformancePoint{u: u, norm: make(map[string]float64, len(policies))}
		for _, name := range policies {
			pt.norm[name] = sum[name] / sum["none"]
		}
		pt.bnd = bndSum / sum["none"]
		points = append(points, pt)
	}
	return points
}

// assertMultiConformance enforces bound ≤ laEDF ≤ ccEDF ≤ staticEDF ≤
// none at every point; laTol loosens only the laEDF-vs-ccEDF link
// (stochastic workloads, as in the uniprocessor suite).
func assertMultiConformance(t *testing.T, cores int, pts []multiConformancePoint, laTol float64) {
	t.Helper()
	const eps = 1e-9
	for _, pt := range pts {
		la, cc, se, none := pt.norm["laEDF"], pt.norm["ccEDF"], pt.norm["staticEDF"], pt.norm["none"]
		t.Logf("m=%d u=%.2f: bound=%.4f laEDF=%.4f ccEDF=%.4f staticEDF=%.4f none=%.4f",
			cores, pt.u, pt.bnd, la, cc, se, none)
		if none != 1 {
			t.Errorf("m=%d u=%.2f: baseline does not normalize to 1 (got %v)", cores, pt.u, none)
		}
		// As in the uniprocessor suite, the bound is computed from the
		// baseline's per-core cycle counts while each policy truncates a
		// slightly different sliver of in-flight work at the horizon, so a
		// policy's energy can sit a hair below the bound; 1% covers that.
		for _, name := range []string{"laEDF", "ccEDF", "staticEDF"} {
			if pt.norm[name] < pt.bnd*0.99 {
				t.Errorf("m=%d u=%.2f: %s %.4f far below the lower bound %.4f",
					cores, pt.u, name, pt.norm[name], pt.bnd)
			}
		}
		if la > cc+laTol+eps {
			t.Errorf("m=%d u=%.2f: laEDF %.4f above ccEDF %.4f", cores, pt.u, la, cc)
		}
		if cc > se+eps {
			t.Errorf("m=%d u=%.2f: ccEDF %.4f above staticEDF %.4f", cores, pt.u, cc, se)
		}
		if se > none+eps {
			t.Errorf("m=%d u=%.2f: staticEDF %.4f above none %.4f", cores, pt.u, se, none)
		}
	}
}

// multiConformanceUtils scales the uniprocessor axis to m cores,
// stopping at 0.8m where worst-fit packing still succeeds for most
// sets (the ordering claim is about schedulable workloads).
func multiConformanceUtils(cores int) []float64 {
	base := []float64{0.2, 0.4, 0.6, 0.8}
	out := make([]float64, len(base))
	for i, u := range base {
		out[i] = u * float64(cores)
	}
	return out
}

// TestMultiCoreConformanceWCET checks the partitioned-EDF policy
// ordering with full-WCET execution at 2 and 4 cores.
func TestMultiCoreConformanceWCET(t *testing.T) {
	for _, m := range []int{2, 4} {
		pts := multiConformanceSweep(t, m, 42, multiConformanceUtils(m), 8, "wcet")
		assertMultiConformance(t, m, pts, 0)
	}
}

// TestMultiCoreConformanceConstantC repeats the check with tasks using
// 70% of their WCET — the regime where the dynamic policies separate
// from the statically-scaled one.
func TestMultiCoreConformanceConstantC(t *testing.T) {
	for _, m := range []int{2, 4} {
		pts := multiConformanceSweep(t, m, 17, multiConformanceUtils(m), 8, "c=0.7")
		assertMultiConformance(t, m, pts, 0)
	}
}

// TestMultiCoreConformanceUniform repeats the check with uniformly
// random execution times, tolerating a sliver of laEDF-vs-ccEDF noise
// as the uniprocessor suite does.
func TestMultiCoreConformanceUniform(t *testing.T) {
	for _, m := range []int{2, 4} {
		pts := multiConformanceSweep(t, m, 7, multiConformanceUtils(m), 8, "uniform")
		assertMultiConformance(t, m, pts, 0.02)
	}
}

// TestPartitionedVsGlobalMissSanity checks the miss-rate relationship
// on GFB-schedulable sets: workloads the global admission test accepts
// run miss-free under global gang scheduling, and when the partitioned
// placement is also feasible, partitioned-EDF is miss-free too. gangLA
// is deliberately absent: at m > 1 it is an unguaranteed heuristic
// (Dhall-effect starvation; see core/gang.go).
func TestPartitionedVsGlobalMissSanity(t *testing.T) {
	gangs := map[string]string{"gangStaticEDF": "staticEDF", "gangCCEDF": "ccEDF"}
	for _, m := range []int{2, 4} {
		checked := 0
		for seed := int64(1); checked < 6; seed++ {
			if seed > 200 {
				t.Fatalf("m=%d: no GFB-schedulable sets in 200 seeds", m)
			}
			g := task.Generator{N: 3 * m, Utilization: 0.45 * float64(m), Rand: rand.New(rand.NewSource(seed))}
			ts, err := g.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if !sched.GlobalEDFTest(ts, m, 1) {
				continue
			}
			checked++
			horizon := min(10*ts.MaxPeriod(), 2000)
			for gang, uni := range gangs {
				gres, err := RunMulti(MultiConfig{
					Tasks:     ts,
					Machine:   machine.Machine0().WithCores(m),
					Policy:    gang,
					Placement: sched.Global,
					Exec:      "wcet",
					Horizon:   horizon,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !gres.Guaranteed {
					t.Errorf("m=%d seed %d: %s does not guarantee a GFB-passing set", m, seed, gang)
				}
				if gres.MissCount() > 0 {
					t.Errorf("m=%d seed %d: %s missed %d deadlines on a GFB-schedulable set",
						m, seed, gang, gres.MissCount())
				}
				pres, err := RunMulti(MultiConfig{
					Tasks:     ts,
					Machine:   machine.Machine0().WithCores(m),
					Policy:    uni,
					Placement: sched.PartitionedWF,
					Exec:      "wcet",
					Horizon:   horizon,
				})
				if err != nil {
					t.Fatal(err)
				}
				if pres.Feasible && pres.MissCount() > 0 {
					t.Errorf("m=%d seed %d: partitioned %s missed %d deadlines on a feasible partition",
						m, seed, uni, pres.MissCount())
				}
			}
		}
	}
}
