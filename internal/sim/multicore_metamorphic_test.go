package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
)

// Metamorphic properties of the multi-core engine. The partitioned
// engine folds scalar totals in a canonical core order (ascending
// first-assigned-task index) and seeds each partition's execution model
// from its first task's original index — not from the core index — so
// relabeling the cores of a partition must leave every system-wide
// total bit-identical and every per-core entry identical after the
// index remap. These tests pin both halves of that contract.

// permutePartition relabels the cores of p through perm: a task on core
// c moves to core perm[c]. The workload on each (renamed) core is
// unchanged, so the run must be equivalent.
func permutePartition(p sched.Partition, perm []int) sched.Partition {
	q := sched.Partition{
		Cores:    p.Cores,
		Assign:   make([]int, len(p.Assign)),
		Util:     make([]float64, p.Cores),
		Feasible: p.Feasible,
	}
	for i, c := range p.Assign {
		q.Assign[i] = perm[c]
	}
	for c, u := range p.Util {
		q.Util[perm[c]] = u
	}
	return q
}

// TestMultiCoreCorePermutationInvariance runs the same workload under
// the default partition and under random core relabelings of it, and
// requires bit-identical system-wide totals and per-core stats equal
// after the index remap.
func TestMultiCoreCorePermutationInvariance(t *testing.T) {
	for _, m := range []int{2, 4} {
		for _, execSpec := range []string{"wcet", "uniform", "beta=2,5"} {
			for seed := int64(1); seed <= 3; seed++ {
				g := task.Generator{N: 3 * m, Utilization: 0.6 * float64(m), Rand: rand.New(rand.NewSource(seed))}
				ts, err := g.Generate()
				if err != nil {
					t.Fatal(err)
				}
				base, err := sched.PartitionFor(sched.PartitionedWF, ts, m)
				if err != nil {
					t.Fatal(err)
				}
				cfg := MultiConfig{
					Tasks:           ts,
					Machine:         machine.Machine0().WithCores(m),
					Policy:          "ccEDF",
					Placement:       sched.PartitionedWF,
					Exec:            execSpec,
					Seed:            seed * 101,
					Horizon:         min(10*ts.MaxPeriod(), 1500),
					CheckInvariants: true,
				}
				ref, err := RunMulti(cfg)
				if err != nil {
					t.Fatal(err)
				}

				// A few deterministic permutations per case, including the
				// full reversal.
				prand := rand.New(rand.NewSource(seed ^ 0xA5))
				for trial := 0; trial < 3; trial++ {
					perm := prand.Perm(m)
					if trial == 0 {
						for c := range perm {
							perm[c] = m - 1 - c
						}
					}
					pcfg := cfg
					pp := permutePartition(base, perm)
					pcfg.Partition = &pp
					got, err := RunMulti(pcfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(multiTotals(got), multiTotals(ref)) {
						t.Fatalf("m=%d exec=%s seed=%d perm=%v: totals diverge\nref: %+v\ngot: %+v",
							m, execSpec, seed, perm, multiTotals(ref), multiTotals(got))
					}
					if !reflect.DeepEqual(got.Misses, ref.Misses) {
						t.Fatalf("m=%d exec=%s seed=%d perm=%v: miss lists diverge", m, execSpec, seed, perm)
					}
					if !reflect.DeepEqual(got.PerTask, ref.PerTask) {
						t.Fatalf("m=%d exec=%s seed=%d perm=%v: per-task stats diverge", m, execSpec, seed, perm)
					}
					for c := 0; c < m; c++ {
						if !reflect.DeepEqual(got.PerCore[perm[c]], ref.PerCore[c]) {
							t.Fatalf("m=%d exec=%s seed=%d perm=%v: core %d → %d stats diverge\nref: %+v\ngot: %+v",
								m, execSpec, seed, perm, c, perm[c], ref.PerCore[c], got.PerCore[perm[c]])
						}
					}
				}
			}
		}
	}
}

// TestMultiCorePartitionDeterminism pins that packing is a pure
// function of (set, m): repeated calls — and calls on a structurally
// equal regenerated set — give DeepEqual partitions for both
// heuristics.
func TestMultiCorePartitionDeterminism(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8} {
		for seed := int64(1); seed <= 5; seed++ {
			gen := func() *task.Set {
				g := task.Generator{N: 12, Utilization: 0.5 * float64(m), Rand: rand.New(rand.NewSource(seed))}
				ts, err := g.Generate()
				if err != nil {
					t.Fatal(err)
				}
				return ts
			}
			a, b := gen(), gen()
			for _, p := range []sched.Placement{sched.PartitionedFF, sched.PartitionedWF} {
				pa, err := sched.PartitionFor(p, a, m)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := sched.PartitionFor(p, b, m)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("m=%d seed=%d %v: partition not deterministic\n%+v\n%+v", m, seed, p, pa, pb)
				}
			}
		}
	}
}

// TestMultiCoreBatchMatchesSingle pins the lockstep batch engine
// against the one-at-a-time runner at m > 1: the same MultiConfig must
// produce DeepEqual results on both, for partitioned and global
// placements.
func TestMultiCoreBatchMatchesSingle(t *testing.T) {
	var cfgs []MultiConfig
	for _, m := range []int{2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			g := task.Generator{N: 3 * m, Utilization: 0.55 * float64(m), Rand: rand.New(rand.NewSource(seed))}
			ts, err := g.Generate()
			if err != nil {
				t.Fatal(err)
			}
			horizon := min(10*ts.MaxPeriod(), 1200)
			cfgs = append(cfgs, MultiConfig{
				Tasks: ts, Machine: machine.Machine0().WithCores(m),
				Policy: "laEDF", Placement: sched.PartitionedFF,
				Exec: "uniform", Seed: seed, Horizon: horizon,
			})
			cfgs = append(cfgs, MultiConfig{
				Tasks: ts, Machine: machine.Machine0().WithCores(m),
				Policy: "gangCCEDF", Placement: sched.Global,
				Exec: "c=0.8", Seed: seed, Horizon: horizon,
			})
		}
	}
	batch, errs := NewBatchRunner().RunMulti(cfgs)
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d (%s/%v): %v", i, cfg.Policy, cfg.Placement, errs[i])
		}
		single, err := RunMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], single) {
			t.Errorf("lane %d (%s/%v, cores=%d): batch result diverges from single-run",
				i, cfg.Policy, cfg.Placement, cfg.Machine.NumCores())
		}
	}
}
