package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// The m = 1 regression suite pins the multiprocessor generalization to
// the uniprocessor engine it grew out of: on a single-core machine the
// multi-core Runner and BatchRunner must reproduce the scalar engine's
// results bit for bit — same energies, same event counts, same misses,
// same traces — for every registered policy, on the success path and on
// the error and cancellation paths alike. The scalar results are
// themselves pinned by the paper's golden traces (golden_trace_test.go)
// and the conformance suite, so bit-identity here chains the whole
// multiprocessor layer back to the paper's worked examples.

// regressionPolicies are the registered policies the m = 1 pin covers:
// both baselines, the four scaling policies of Table 4, and a contained
// variant exercising the wrapper layer.
func regressionPolicies() []string {
	return []string{"none", "noneRM", "staticRM", "staticEDF", "ccEDF", "ccRM", "laEDF", "laEDF+contain"}
}

// sharedTotals is the projection of a result both engines must agree
// on; reflect.DeepEqual on this struct is the bit-identity claim.
type sharedTotals struct {
	Policy      string
	Horizon     float64
	ExecEnergy  float64
	IdleEnergy  float64
	TotalEnergy float64
	CyclesDone  float64
	BusyTime    float64
	IdleTime    float64
	HaltTime    float64
	Switches    int
	Releases    int
	Completions int
	Events      int
	Preemptions int
	Misses      []Miss
	Guaranteed  bool
	PerTask     []TaskStats
}

func scalarTotals(r *Result) sharedTotals {
	return sharedTotals{
		Policy: r.Policy, Horizon: r.Horizon,
		ExecEnergy: r.ExecEnergy, IdleEnergy: r.IdleEnergy, TotalEnergy: r.TotalEnergy,
		CyclesDone: r.CyclesDone, BusyTime: r.BusyTime, IdleTime: r.IdleTime, HaltTime: r.HaltTime,
		Switches: r.Switches, Releases: r.Releases, Completions: r.Completions,
		Events: r.Events, Preemptions: r.Preemptions,
		Misses: append([]Miss(nil), r.Misses...), Guaranteed: r.Guaranteed,
		PerTask: append([]TaskStats(nil), r.PerTask...),
	}
}

func multiTotals(r *MultiResult) sharedTotals {
	return sharedTotals{
		Policy: r.Policy, Horizon: r.Horizon,
		ExecEnergy: r.ExecEnergy, IdleEnergy: r.IdleEnergy, TotalEnergy: r.TotalEnergy,
		CyclesDone: r.CyclesDone, BusyTime: r.BusyTime, IdleTime: r.IdleTime, HaltTime: r.HaltTime,
		Switches: r.Switches, Releases: r.Releases, Completions: r.Completions,
		Events: r.Events, Preemptions: r.Preemptions,
		Misses: append([]Miss(nil), r.Misses...), Guaranteed: r.Guaranteed,
		PerTask: append([]TaskStats(nil), r.PerTask...),
	}
}

// regressionSet draws the workload both engines run: a seeded random
// set whose high utilization makes the RM policies miss, so the miss
// path is pinned too.
func regressionSet(t *testing.T, seed int64) *task.Set {
	t.Helper()
	g := task.Generator{N: 6, Utilization: 0.92, Rand: rand.New(rand.NewSource(seed))}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// scalarRun executes the scalar engine with the exact derivation the
// multi-core engine uses at m = 1: same policy resolution, same
// execution-model seed (core 0's first task is task 0, so the per-core
// stride contributes nothing).
func scalarRun(t *testing.T, ts *task.Set, policy, execSpec string, seed int64, horizon float64) *Result {
	t.Helper()
	p, err := core.ExtendedByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := task.ParseExec(execSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Tasks: ts, Machine: machine.Machine0(), Policy: p, Exec: exec, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiCoreM1BitIdentical pins RunMulti at one core against the
// scalar engine for every regression policy across deterministic and
// stochastic execution models.
func TestMultiCoreM1BitIdentical(t *testing.T) {
	for _, execSpec := range []string{"wcet", "c=0.6", "uniform", "beta=2,5"} {
		for _, policy := range regressionPolicies() {
			ts := regressionSet(t, 11)
			want := scalarTotals(scalarRun(t, ts, policy, execSpec, 33, 900))
			mres, err := RunMulti(MultiConfig{
				Tasks:   ts,
				Machine: machine.Machine0().WithCores(1),
				Policy:  policy,
				Exec:    execSpec,
				Seed:    33,
				Horizon: 900,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", policy, execSpec, err)
			}
			if got := multiTotals(mres); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: m=1 multi result diverges from scalar\ngot  %+v\nwant %+v", policy, execSpec, got, want)
			}
			if mres.Cores != 1 || len(mres.PerCore) != 1 {
				t.Errorf("%s/%s: m=1 run reports %d cores, %d PerCore entries", policy, execSpec, mres.Cores, len(mres.PerCore))
			}
			if mres.Migrations != 0 {
				t.Errorf("%s/%s: partitioned run migrated %d times", policy, execSpec, mres.Migrations)
			}
			wantTasks := make([]int, ts.Len())
			for i := range wantTasks {
				wantTasks[i] = i
			}
			if !reflect.DeepEqual(mres.PerCore[0].Tasks, wantTasks) {
				t.Errorf("%s/%s: core 0 tasks = %v, want %v", policy, execSpec, mres.PerCore[0].Tasks, wantTasks)
			}
		}
	}
}

// TestMultiCoreM1BatchBitIdentical runs the same pin through the
// lockstep BatchRunner: every lane of a mixed-policy multi-core batch
// at m = 1 must match the scalar engine.
func TestMultiCoreM1BatchBitIdentical(t *testing.T) {
	ts := regressionSet(t, 7)
	policies := regressionPolicies()
	cfgs := make([]MultiConfig, len(policies))
	for i, p := range policies {
		cfgs[i] = MultiConfig{
			Tasks:   ts,
			Machine: machine.Machine0().WithCores(1),
			Policy:  p,
			Exec:    "uniform",
			Seed:    5,
			Horizon: 700,
		}
	}
	var br BatchRunner
	results, errs := br.RunMulti(cfgs)
	for i, p := range policies {
		if errs[i] != nil {
			t.Fatalf("%s: %v", p, errs[i])
		}
		want := scalarTotals(scalarRun(t, ts, p, "uniform", 5, 700))
		if got := multiTotals(results[i]); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: batch m=1 lane diverges from scalar\ngot  %+v\nwant %+v", p, got, want)
		}
	}
}

// TestMultiCoreM1TraceIdentical pins the m = 1 execution trace — the
// exact segment sequence, operating points included — against the
// scalar recorder on the paper's worked example, for the four policies
// whose scalar traces the golden suite checks against Figures 2-7.
func TestMultiCoreM1TraceIdentical(t *testing.T) {
	for _, policy := range []string{"staticEDF", "ccEDF", "ccRM", "laEDF"} {
		var srec trace.Recorder
		p := mustPolicy(t, policy)
		if _, err := Run(Config{
			Tasks:    task.PaperExample(),
			Machine:  machine.Machine0(),
			Policy:   p,
			Exec:     task.FullWCET{},
			Horizon:  16,
			Recorder: &srec,
		}); err != nil {
			t.Fatal(err)
		}
		var mrec trace.Recorder
		if _, err := RunMulti(MultiConfig{
			Tasks:    task.PaperExample(),
			Machine:  machine.Machine0().WithCores(1),
			Policy:   policy,
			Exec:     "wcet",
			Horizon:  16,
			Recorder: &mrec,
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mrec.Segments(), srec.Segments()) {
			t.Errorf("%s: m=1 trace diverges from scalar\ngot  %+v\nwant %+v", policy, mrec.Segments(), srec.Segments())
		}
	}
}

// TestMultiCoreM1Errors pins the validation error paths: the m = 1
// engine must reject exactly what the scalar engine rejects, plus the
// multi-core-specific misconfigurations.
func TestMultiCoreM1Errors(t *testing.T) {
	ts := regressionSet(t, 3)
	cases := []struct {
		name string
		cfg  MultiConfig
	}{
		{"empty set", MultiConfig{Machine: machine.Machine0(), Policy: "ccEDF"}},
		{"nil machine", MultiConfig{Tasks: ts, Policy: "ccEDF"}},
		{"unknown policy", MultiConfig{Tasks: ts, Machine: machine.Machine0(), Policy: "noSuchPolicy"}},
		{"bad exec spec", MultiConfig{Tasks: ts, Machine: machine.Machine0(), Policy: "ccEDF", Exec: "c=7"}},
		{"recorder on multi-core", MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(2), Policy: "ccEDF", Recorder: &trace.Recorder{}}},
		{"global without gang policy", MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(2), Policy: "ccEDF", Placement: sched.Global}},
		{"partition override under global", MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(2), Policy: "gangCCEDF", Placement: sched.Global, Partition: &sched.Partition{}}},
		{"partition override wrong core count", MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(2), Policy: "ccEDF",
			Partition: &sched.Partition{Cores: 3, Assign: make([]int, ts.Len())}}},
		{"partition override wrong task count", MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(2), Policy: "ccEDF",
			Partition: &sched.Partition{Cores: 2, Assign: []int{0}}}},
	}
	for _, tc := range cases {
		if _, err := RunMulti(tc.cfg); err == nil {
			t.Errorf("%s: RunMulti accepted the config", tc.name)
		}
		var br BatchRunner
		_, errs := br.RunMulti([]MultiConfig{tc.cfg})
		if errs[0] == nil {
			t.Errorf("%s: BatchRunner.RunMulti accepted the config", tc.name)
		}
	}
	if _, err := RunMulti(MultiConfig{Tasks: &task.Set{}, Machine: machine.Machine0(), Policy: "ccEDF"}); !errors.Is(err, task.ErrEmptySet) {
		t.Errorf("empty set error = %v, want task.ErrEmptySet", err)
	}
}

// TestMultiCoreM1Cancellation pins the cancellation path: a cancelled
// m = 1 run must stop where the scalar engine stops and fold the same
// partial totals, on both the MultiRunner and the batch engine.
func TestMultiCoreM1Cancellation(t *testing.T) {
	ts := regressionSet(t, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	p := mustPolicy(t, "ccEDF")
	exec, err := task.ParseExec("wcet", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, serr := RunContext(ctx, Config{Tasks: ts, Machine: machine.Machine0(), Policy: p, Exec: exec, Horizon: 600})
	var scanc *Canceled
	if !errors.As(serr, &scanc) {
		t.Fatalf("scalar run: %v, want Canceled", serr)
	}

	mcfg := MultiConfig{Tasks: ts, Machine: machine.Machine0().WithCores(1), Policy: "ccEDF", Exec: "wcet", Horizon: 600}
	_, merr := RunMultiContext(ctx, mcfg)
	var mcanc *MultiCanceled
	if !errors.As(merr, &mcanc) {
		t.Fatalf("multi run: %v, want MultiCanceled", merr)
	}
	if !errors.Is(merr, context.Canceled) {
		t.Errorf("MultiCanceled does not unwrap to context.Canceled: %v", merr)
	}
	if mcanc.At != scanc.At {
		t.Errorf("multi cancelled at t=%g, scalar at t=%g", mcanc.At, scanc.At)
	}
	if got, want := multiTotals(mcanc.Partial), scalarTotals(scanc.Partial); !reflect.DeepEqual(got, want) {
		t.Errorf("partial results diverge\ngot  %+v\nwant %+v", got, want)
	}

	var br BatchRunner
	_, errs := br.RunMultiContext(ctx, []MultiConfig{mcfg})
	var bcanc *MultiCanceled
	if !errors.As(errs[0], &bcanc) {
		t.Fatalf("batch multi run: %v, want MultiCanceled", errs[0])
	}
	if bcanc.At != scanc.At {
		t.Errorf("batch cancelled at t=%g, scalar at t=%g", bcanc.At, scanc.At)
	}
	if got, want := multiTotals(bcanc.Partial), scalarTotals(scanc.Partial); !reflect.DeepEqual(got, want) {
		t.Errorf("batch partial results diverge\ngot  %+v\nwant %+v", got, want)
	}
}

// TestGangM1ScalarEquivalent pins each gang policy at one core to its
// uniprocessor counterpart: on a single core the global engine and the
// gang formulas (GFB admission at m = 1, Graham pacing at m = 1) reduce
// exactly to the scalar engine running the original policy.
func TestGangM1ScalarEquivalent(t *testing.T) {
	pairs := [][2]string{
		{"gangStaticEDF", "staticEDF"},
		{"gangCCEDF", "ccEDF"},
		{"gangLAEDF", "laEDF"},
	}
	for seed := int64(1); seed <= 4; seed++ {
		g := task.Generator{N: 5, Utilization: 0.6, Rand: rand.New(rand.NewSource(seed))}
		ts, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			mres, err := RunMulti(MultiConfig{
				Tasks:     ts,
				Machine:   machine.Machine0().WithCores(1),
				Policy:    pr[0],
				Placement: sched.Global,
				Exec:      "c=0.7",
				Seed:      seed,
				Horizon:   800,
			})
			if err != nil {
				t.Fatal(err)
			}
			sres := scalarRun(t, ts, pr[1], "c=0.7", seed, 800)
			if mres.TotalEnergy != sres.TotalEnergy ||
				mres.Switches != sres.Switches ||
				mres.CyclesDone != sres.CyclesDone ||
				mres.Guaranteed != sres.Guaranteed ||
				mres.MissCount() != sres.MissCount() {
				t.Errorf("seed %d: %s at m=1 diverges from %s: energy %g vs %g, switches %d vs %d, guaranteed %v vs %v",
					seed, pr[0], pr[1], mres.TotalEnergy, sres.TotalEnergy,
					mres.Switches, sres.Switches, mres.Guaranteed, sres.Guaranteed)
			}
		}
	}
}
