package sim

import (
	"strconv"

	"rtdvs/internal/obs"
	"rtdvs/internal/sched"
)

// MultiMetrics aggregates multi-core run outcomes into an obs registry:
// the rtdvs_core_* family. Like Metrics, every instrument is registered
// at construction — including one counter per core index up to the
// configured core count — so the per-run observe step is a handful of
// atomic adds, allocation free, and safe to share across MultiRunners
// on different goroutines. Observation happens once per successful run.
type MultiMetrics struct {
	cores int

	// runs[p] counts successful runs under placement p.
	runs [3]*obs.Counter

	migrations  *obs.Counter
	infeasible  *obs.Counter
	misses      *obs.Counter
	preemptions *obs.Counter
	switches    *obs.Counter

	// Per-core accumulators, indexed by core; runs on machines with more
	// cores than the metrics were built for fold the overflow into the
	// last registered core rather than dropping it.
	busyTime   []*obs.Counter
	execEnergy []*obs.Counter
	idleEnergy []*obs.Counter
}

// NewMultiMetrics registers the multi-core observables on reg for
// platforms of up to the given core count (values outside [1, MaxCores]
// are clamped).
func NewMultiMetrics(reg *obs.Registry, cores int) *MultiMetrics {
	if cores < 1 {
		cores = 1
	}
	m := &MultiMetrics{
		cores: cores,
		migrations: reg.Counter("rtdvs_core_migrations_total",
			"Jobs resuming on a different core than they last ran on (global EDF)."),
		infeasible: reg.Counter("rtdvs_core_infeasible_partitions_total",
			"Multi-core runs whose placement could not admit the task set at full speed."),
		misses: reg.Counter("rtdvs_core_misses_total",
			"Deadline misses across all cores of multi-core runs."),
		preemptions: reg.Counter("rtdvs_core_preemptions_total",
			"Preemptions across all cores of multi-core runs."),
		switches: reg.Counter("rtdvs_core_switches_total",
			"Operating-point transitions across multi-core runs (one per shared-rail change under global EDF)."),
	}
	for i, p := range []sched.Placement{sched.PartitionedFF, sched.PartitionedWF, sched.Global} {
		m.runs[i] = reg.Counter("rtdvs_core_runs_total",
			"Multi-core simulation runs completed successfully.",
			"placement", p.String())
	}
	m.busyTime = make([]*obs.Counter, cores)
	m.execEnergy = make([]*obs.Counter, cores)
	m.idleEnergy = make([]*obs.Counter, cores)
	for c := 0; c < cores; c++ {
		label := strconv.Itoa(c)
		m.busyTime[c] = reg.Counter("rtdvs_core_busy_time_total",
			"Simulated milliseconds each core spent executing.", "core", label)
		m.execEnergy[c] = reg.Counter("rtdvs_core_exec_energy_total",
			"Execution energy charged per core, in cycle-V^2 units.", "core", label)
		m.idleEnergy[c] = reg.Counter("rtdvs_core_idle_energy_total",
			"Idle energy charged per core, in cycle-V^2 units.", "core", label)
	}
	return m
}

// observe folds one finished multi-core run into the counters.
func (m *MultiMetrics) observe(res *MultiResult) {
	for i, p := range []string{"partitioned-ff", "partitioned-wf", "global"} {
		if res.Placement == p {
			m.runs[i].Inc()
			break
		}
	}
	m.migrations.Add(float64(res.Migrations))
	if !res.Feasible {
		m.infeasible.Inc()
	}
	m.misses.Add(float64(len(res.Misses)))
	m.preemptions.Add(float64(res.Preemptions))
	m.switches.Add(float64(res.Switches))
	for c := range res.PerCore {
		k := c
		if k >= m.cores {
			k = m.cores - 1
		}
		m.busyTime[k].Add(res.PerCore[c].BusyTime)
		m.execEnergy[k].Add(res.PerCore[c].ExecEnergy)
		m.idleEnergy[k].Add(res.PerCore[c].IdleEnergy)
	}
}
