package sim

import (
	"math"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// runExample simulates the paper's worked example (Tables 2 and 3) for
// 16 ms on machine 0 with a perfect halt feature.
func runExample(t *testing.T, policy string) *Result {
	t.Helper()
	p, err := core.ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	exec := task.PaperExampleExec()
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  p,
		Exec:    exec,
		Horizon: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTable4 reproduces the normalized energy figures of Table 4 for the
// first 16 ms of the example task set.
func TestTable4(t *testing.T) {
	want := map[string]float64{
		"none":      1.00,
		"staticRM":  1.00,
		"staticEDF": 0.64,
		"ccEDF":     0.52,
		"ccRM":      0.71,
		"laEDF":     0.44,
	}
	baseline := runExample(t, "none").TotalEnergy
	if baseline <= 0 {
		t.Fatalf("baseline energy = %v, want > 0", baseline)
	}
	for policy, w := range want {
		res := runExample(t, policy)
		if n := res.MissCount(); n != 0 {
			t.Errorf("%s: %d deadline misses: %+v", policy, n, res.Misses)
		}
		got := res.TotalEnergy / baseline
		if math.Abs(got-w) > 0.005 {
			t.Errorf("%s: normalized energy = %.4f, want %.2f (abs %v)", policy, got, w, res.TotalEnergy)
		}
	}
}
