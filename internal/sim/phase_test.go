package sim

import (
	"math/rand"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

func TestPhaseDelaysFirstRelease(t *testing.T) {
	ts := task.MustSet(
		task.Task{Name: "a", Period: 10, WCET: 2},
		task.Task{Name: "b", Period: 10, WCET: 2, Phase: 5},
	)
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// a releases at 0..90 (10×), b at 5..95 (10×).
	if res.PerTask[0].Releases != 10 || res.PerTask[1].Releases != 10 {
		t.Errorf("releases = %+v", res.PerTask)
	}
	if res.MissCount() != 0 {
		t.Errorf("%d misses", res.MissCount())
	}
}

func TestPhaseValidation(t *testing.T) {
	if err := (task.Task{Period: 10, WCET: 1, Phase: -1}).Validate(); err == nil {
		t.Error("negative phase accepted")
	}
}

// The phase-robust policies keep their guarantee under arbitrary release
// offsets — the demand-bound argument holds per task regardless of
// phasing. laEDF is deliberately excluded: its per-window utilization
// reservation is exact only for synchronous releases (see
// rtos.TestLAEDFPhaseSensitivity for the pinned counterexample).
func TestPhaseRobustPoliciesNoMissesAtRandomOffsets(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(6)
		u := 0.3 + 0.7*r.Float64()
		g := task.Generator{N: n, Utilization: u, Rand: r}
		ts, err := g.Generate()
		if err != nil {
			continue
		}
		// Randomize the phases.
		tasks := ts.Tasks()
		for i := range tasks {
			tasks[i].Phase = r.Float64() * tasks[i].Period
		}
		phased, err := task.NewSet(tasks...)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 8 * phased.MaxPeriod()
		for _, name := range []string{"none", "staticEDF", "ccEDF"} {
			p, err := core.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Tasks:   phased,
				Machine: machine.Machine2(),
				Policy:  p,
				Exec:    task.ConstantFraction{C: 0.8},
				Horizon: horizon,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Guaranteed && res.MissCount() != 0 {
				t.Fatalf("trial %d: %s missed %d with phases on %s",
					trial, name, res.MissCount(), phased)
			}
		}
	}
}

// RM's guarantee is critical-instant based, so offsets only help: the
// RM-based policies also stay clean under random phasing whenever the
// test admitted the synchronous worst case.
func TestRMPoliciesNoMissesAtRandomOffsets(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(5)
		u := 0.3 + 0.4*r.Float64() // region where the RM test passes
		g := task.Generator{N: n, Utilization: u, Rand: r}
		ts, err := g.Generate()
		if err != nil {
			continue
		}
		tasks := ts.Tasks()
		for i := range tasks {
			tasks[i].Phase = r.Float64() * tasks[i].Period
		}
		phased, err := task.NewSet(tasks...)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"staticRM", "ccRM"} {
			p, err := core.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Tasks:   phased,
				Machine: machine.Machine0(),
				Policy:  p,
				Horizon: 6 * phased.MaxPeriod(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Guaranteed && res.MissCount() != 0 {
				t.Fatalf("trial %d: %s missed %d with phases on %s",
					trial, name, res.MissCount(), phased)
			}
		}
	}
}

// The flip side of the kernel's admission-transient finding: the same
// A/B/N workload that makes laEDF miss when N is *admitted mid-schedule*
// (rtos.TestLAEDFPhaseSensitivity) is handled cleanly when laEDF knows
// N's parameters a priori, even at the identical release phasing. The
// hazard is therefore the task-set change — laEDF's earlier deferral
// decisions did not reserve for the newcomer — not the offset releases
// themselves; a broad random search over phased sets at U≈1 finds no
// pure-phase laEDF miss.
func TestLAEDFHandlesAPrioriPhases(t *testing.T) {
	ts := task.MustSet(
		task.Task{Name: "A", Period: 10, WCET: 5},
		task.Task{Name: "B", Period: 40, WCET: 18},
		task.Task{Name: "N", Period: 12, WCET: 0.6, Phase: 20},
	)
	for _, name := range []string{"laEDF", "ccEDF"} {
		res, err := Run(Config{
			Tasks:   ts,
			Machine: machine.Machine0(),
			Policy:  mustPolicy(t, name),
			Horizon: 2020,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MissCount() != 0 {
			t.Errorf("%s missed %d with a-priori knowledge of the phased task", name, res.MissCount())
		}
	}
}
