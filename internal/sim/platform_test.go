package sim

import (
	"testing"

	"rtdvs/internal/machine"
	"rtdvs/internal/platform"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// thermalFromTrace replays an execution trace through the thermal model,
// mapping operating-point power (native units) to watts with a fixed
// scale, and returns the peak temperature.
func thermalFromTrace(t *testing.T, segs []trace.Segment, idle *machine.Spec) float64 {
	t.Helper()
	th, err := platform.NewThermal(25, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	const wattsPerUnit = 0.6 // 25 units (machine 0 max) → 15 W
	for _, s := range segs {
		var p float64
		switch s.Task {
		case trace.SwitchHalt:
			p = 0
		case trace.Idle:
			p = idle.IdlePower(s.Point) * wattsPerUnit
		default:
			p = s.Point.Power() * wattsPerUnit
		}
		th.Step(p, s.Duration())
	}
	return th.Peak()
}

// The conclusion's claim, made quantitative: RT-DVS reduces the heat
// generated — the peak package temperature under laEDF is well below the
// non-DVS baseline on the same workload.
func TestRTDVSLowersPeakTemperature(t *testing.T) {
	m := machine.Machine0()
	peak := func(policy string) float64 {
		var rec trace.Recorder
		_, err := Run(Config{
			Tasks:    task.PaperExample(),
			Machine:  m,
			Policy:   mustPolicy(t, policy),
			Exec:     task.ConstantFraction{C: 0.7},
			Horizon:  2000,
			Recorder: &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return thermalFromTrace(t, rec.Segments(), m)
	}
	base := peak("none")
	la := peak("laEDF")
	if la >= base {
		t.Fatalf("laEDF peak %v °C not below baseline %v °C", la, base)
	}
	if base-la < 2 {
		t.Errorf("temperature reduction only %.2f °C; expected a visible drop", base-la)
	}
}

// Battery life extends by at least the average-power ratio.
func TestRTDVSExtendsBatteryLife(t *testing.T) {
	m := machine.Machine0()
	power := func(policy string) float64 {
		res, err := Run(Config{
			Tasks:   task.PaperExample(),
			Machine: m,
			Policy:  mustPolicy(t, policy),
			Exec:    task.ConstantFraction{C: 0.7},
			Horizon: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		const wattsPerUnit = 0.6
		return 5 + res.AvgPower()*wattsPerUnit // 5 W of system overhead
	}
	b, err := platform.NewBattery(50)
	if err != nil {
		t.Fatal(err)
	}
	gain := b.LifetimeGain(power("none"), power("ccEDF"))
	if gain <= 1.05 {
		t.Errorf("battery-life gain = %v, expected a material extension", gain)
	}
}
