package sim

import (
	"math"
	"math/rand"
	"testing"

	"rtdvs/internal/bound"
	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// randomCase draws one (task set, machine, exec factory) triple for the
// property tests. The factory returns a fresh, identically-seeded
// execution model on each call so every policy in a comparison sees the
// exact same per-invocation workload draws.
func randomCase(r *rand.Rand) (*task.Set, *machine.Spec, func() task.ExecModel, error) {
	n := r.Intn(8) + 2
	u := 0.05 + 0.95*r.Float64()
	g := task.Generator{N: n, Utilization: u, Rand: r}
	ts, err := g.Generate()
	if err != nil {
		return nil, nil, nil, err
	}
	specs := []*machine.Spec{machine.Machine0(), machine.Machine1(), machine.Machine2(), machine.LaptopK62()}
	m := specs[r.Intn(len(specs))].WithIdleLevel(r.Float64() * 0.5)
	var exec func() task.ExecModel
	switch r.Intn(3) {
	case 0:
		exec = func() task.ExecModel { return task.FullWCET{} }
	case 1:
		c := 0.3 + 0.7*r.Float64()
		exec = func() task.ExecModel { return task.ConstantFraction{C: c} }
	default:
		seed := r.Int63()
		exec = func() task.ExecModel {
			return task.UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(seed))}
		}
	}
	return ts, m, exec, nil
}

// TestNoMissesWhenGuaranteed is the central correctness claim of the
// paper: every RT-DVS policy preserves the deadline guarantees of its
// underlying scheduler. Whenever the policy reports Guaranteed (its
// schedulability test admitted the set at full speed), the simulation must
// complete with zero deadline misses — for any machine, idle level, and
// actual-computation pattern.
func TestNoMissesWhenGuaranteed(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const trials = 120
	checked := 0
	for trial := 0; trial < trials; trial++ {
		ts, m, exec, err := randomCase(r)
		if err != nil {
			continue
		}
		horizon := math.Min(8*ts.MaxPeriod(), 4000)
		for _, name := range core.Names() {
			p, err := core.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{Tasks: ts, Machine: m, Policy: p, Exec: exec(), Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			if res.Guaranteed {
				checked++
				if n := res.MissCount(); n != 0 {
					t.Fatalf("trial %d: %s missed %d deadlines on %s (first %+v)",
						trial, name, n, ts, res.Misses[0])
				}
			}
		}
	}
	if checked < trials {
		t.Fatalf("only %d guaranteed runs checked; property under-exercised", checked)
	}
}

// The RM-based RT-DVS policies may miss only when plain RM itself cannot
// schedule the set (paper footnote 3: every set schedulable under RM is
// also schedulable under the RM-based RT-DVS mechanisms).
func TestRMPoliciesNoWorseThanPlainRM(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := r.Intn(6) + 2
		u := 0.6 + 0.4*r.Float64() // the contested region
		g := task.Generator{N: n, Utilization: u, Rand: r}
		ts, err := g.Generate()
		if err != nil {
			continue
		}
		horizon := math.Min(8*ts.MaxPeriod(), 4000)
		m := machine.Machine0()
		plain, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, "noneRM"), Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		if plain.MissCount() > 0 {
			continue // plain RM cannot schedule it; nothing to guarantee
		}
		for _, name := range []string{"staticRM", "ccRM"} {
			res, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, name), Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			if res.MissCount() > 0 {
				t.Fatalf("trial %d: %s missed %d although plain RM schedules %s",
					trial, name, res.MissCount(), ts)
			}
		}
	}
}

func mustCore(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// No policy can beat the theoretical lower bound computed for the cycles
// it actually executed.
func TestBoundDominates(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		ts, m, exec, err := randomCase(r)
		if err != nil {
			continue
		}
		horizon := math.Min(6*ts.MaxPeriod(), 3000)
		for _, name := range core.Names() {
			res, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, name), Exec: exec(), Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			lb, err := bound.Energy(m, res.CyclesDone, horizon)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalEnergy < lb-1e-6*math.Max(1, lb) {
				t.Fatalf("trial %d: %s energy %v beats the bound %v on %s",
					trial, name, res.TotalEnergy, lb, ts)
			}
		}
	}
}

// Every DVS policy must consume no more energy than the non-DVS baseline:
// per cycle it never uses a higher voltage, and while idle never a higher
// idle power.
func TestPoliciesNeverExceedBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		ts, m, exec, err := randomCase(r)
		if err != nil {
			continue
		}
		horizon := math.Min(6*ts.MaxPeriod(), 3000)
		base, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, "none"), Exec: exec(), Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"staticEDF", "ccEDF", "laEDF"} {
			res, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, name), Exec: exec(), Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalEnergy > base.TotalEnergy*(1+1e-9)+1e-9 {
				t.Fatalf("trial %d: %s energy %v exceeds baseline %v on %s",
					trial, name, res.TotalEnergy, base.TotalEnergy, ts)
			}
		}
	}
}

// ccEDF can never select a higher frequency than statically-scaled EDF:
// its utilization estimate is bounded by the worst case at every
// scheduling point, so its energy is bounded by staticEDF's.
func TestCCEDFDominatesStaticEDF(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		ts, m, exec, err := randomCase(r)
		if err != nil {
			continue
		}
		horizon := math.Min(6*ts.MaxPeriod(), 3000)
		se, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, "staticEDF"), Exec: exec(), Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		cc, err := Run(Config{Tasks: ts, Machine: m, Policy: mustCore(t, "ccEDF"), Exec: exec(), Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		if cc.TotalEnergy > se.TotalEnergy*(1+1e-9)+1e-9 {
			t.Fatalf("trial %d: ccEDF %v > staticEDF %v on %s",
				trial, cc.TotalEnergy, se.TotalEnergy, ts)
		}
	}
}

// Determinism: identical configurations yield identical results.
func TestSimulationDeterministic(t *testing.T) {
	g := task.Generator{N: 6, Utilization: 0.7, Rand: rand.New(rand.NewSource(3))}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(Config{
			Tasks:   ts,
			Machine: machine.Machine2(),
			Policy:  mustCore(t, "laEDF"),
			Exec:    task.ConstantFraction{C: 0.8},
			Horizon: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalEnergy != b.TotalEnergy || a.Switches != b.Switches || a.CyclesDone != b.CyclesDone {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
}
