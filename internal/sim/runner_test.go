package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// runnerTestConfigs builds a varied batch of configurations: several
// policies, machines, task-set sizes, and exec models. The exec model is
// built fresh per call from the given seed so a replay sees identical
// randomness.
func runnerTestConfigs(t *testing.T) []func() Config {
	t.Helper()
	var mk []func() Config
	for _, pname := range []string{"none", "staticEDF", "ccEDF", "ccRM", "laEDF", "laEDF+contain"} {
		pname := pname
		for ci, gen := range []struct {
			n    int
			u    float64
			spec *machine.Spec
		}{
			{3, 0.45, machine.Machine0()},
			{8, 0.7, machine.Machine1()},
			{5, 0.9, machine.Machine2()},
		} {
			gen, seed := gen, int64(100+ci)
			mk = append(mk, func() Config {
				r := rand.New(rand.NewSource(seed))
				ts, err := (&task.Generator{N: gen.n, Utilization: gen.u, Rand: r}).Generate()
				if err != nil {
					t.Fatal(err)
				}
				p, err := core.ByName(pname)
				if err != nil {
					t.Fatal(err)
				}
				return Config{
					Tasks:   ts,
					Machine: gen.spec,
					Policy:  p,
					Exec:    task.UniformFraction{Lo: 0.2, Hi: 1, Rand: rand.New(rand.NewSource(seed ^ 77))},
					Horizon: 400,
				}
			})
		}
	}
	return mk
}

// A reused Runner must produce results bit-identical to fresh one-shot
// runs, across policies, machines, and task-set shapes.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	configs := runnerTestConfigs(t)
	runner := NewRunner()
	// Two passes over the batch so every reuse transition (small→large
	// sets, EDF→RM, different machines) is exercised at least twice.
	for pass := 0; pass < 2; pass++ {
		for ci, mk := range configs {
			fresh, err := Run(mk())
			if err != nil {
				t.Fatalf("pass %d cfg %d: fresh run: %v", pass, ci, err)
			}
			reused, err := runner.Run(mk())
			if err != nil {
				t.Fatalf("pass %d cfg %d: reused run: %v", pass, ci, err)
			}
			if !reflect.DeepEqual(normalizeResult(fresh), normalizeResult(reused)) {
				t.Errorf("pass %d cfg %d (%s): reused Runner diverged from fresh run\nfresh:  %+v\nreused: %+v",
					pass, ci, fresh.Policy, fresh, reused)
			}
		}
	}
}

// normalizeResult maps empty-but-non-nil slices to nil so DeepEqual
// compares content, not the cosmetic nil-vs-len-0 distinction between a
// fresh result and a reused buffer truncated to zero length.
func normalizeResult(r *Result) *Result {
	c := r.Clone()
	if len(c.Misses) == 0 {
		c.Misses = nil
	}
	return c
}

// Clone must decouple a result from the Runner's buffers: re-running the
// Runner on a different configuration must leave the clone untouched.
func TestResultCloneSurvivesRunnerReuse(t *testing.T) {
	configs := runnerTestConfigs(t)
	runner := NewRunner()
	first, err := runner.Run(configs[0]())
	if err != nil {
		t.Fatal(err)
	}
	clone := first.Clone()
	want, err := Run(configs[0]())
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the runner's buffers with a run of a different shape.
	if _, err := runner.Run(configs[7]()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeResult(clone), normalizeResult(want)) {
		t.Errorf("clone mutated by Runner reuse:\nclone: %+v\nwant:  %+v", clone, want)
	}
}
