// Package sim is the discrete-event processor/energy simulator the
// evaluation runs on — the Go counterpart of the authors' C++ simulator
// (Section 3.1).
//
// The simulator advances virtual time between scheduling events (task
// releases and completions), executing the scheduler-selected task at the
// operating point dictated by the attached RT-DVS policy. A constant
// quantum of energy is charged per cycle of operation, scaled by the
// square of the operating voltage; halted (idle) cycles are charged the
// machine's idle-level fraction of a normal cycle. Task execution reduces
// to counting cycles, so no instruction traces are needed.
//
// The event loop is designed to be allocation-free in steady state:
// pending releases live in an index-heap timer queue and ready tasks in
// an index-heap run queue (both from internal/sched), so each event costs
// O(log n) instead of a full task scan, and all per-run state is held in
// reusable buffers. A Runner amortizes those buffers across sequential
// runs — the experiment harness executes hundreds of simulations per
// worker on a single Runner without reallocating.
package sim

import (
	"context"
	"fmt"
	"math"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/fault"
	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// wireDistributions hands the run's execution model to the policy when
// both sides speak distributions: a core.DistributionPlanner policy
// (stSelect, possibly wrapped in containment) plans against exactly the
// task.Distributions model driving the simulation. Policies and models
// outside those interfaces are untouched.
func wireDistributions(p core.Policy, exec task.ExecModel) {
	dp, ok := p.(core.DistributionPlanner)
	if !ok {
		return
	}
	d, _ := exec.(task.Distributions)
	dp.SetDistributions(d) // nil clears a stale model from a prior run
}

// Config describes one simulation run.
type Config struct {
	// Tasks is the periodic task set; each task is first released at its
	// Phase (time zero — the synchronous critical instant — by default).
	Tasks *task.Set
	// Machine is the platform specification.
	Machine *machine.Spec
	// Policy is the RT-DVS policy; the simulator calls Attach itself.
	Policy core.Policy
	// Exec models actual per-invocation computation; nil means FullWCET.
	Exec task.ExecModel
	// Horizon is the simulated duration in milliseconds; 0 selects
	// 20 × the longest period.
	Horizon float64
	// Overhead optionally models the mandatory stop interval of operating
	// point transitions. Nil means instantaneous switches, the paper's
	// simulator assumption.
	Overhead *machine.SwitchOverhead
	// Recorder optionally captures the execution trace.
	Recorder *trace.Recorder
	// CheckInvariants enables the runtime invariant checker (see
	// invariant.go); a violation makes Run return an error. The checker
	// is always on when running under `go test`, regardless of this flag.
	CheckInvariants bool
	// Faults optionally injects model violations — WCET overruns, release
	// jitter and timer drift, operating-point switch failures (see
	// internal/fault). Nil runs the fault-free model, bit-identical to a
	// simulator without the injection hooks. Injectors are stateful:
	// create one per run.
	Faults *fault.Injector
	// Metrics optionally accumulates run observables (see NewMetrics)
	// into an obs registry. Observation happens once per successful run,
	// off the event loop, so the hot path stays allocation-free and run
	// results are bit-identical with or without it.
	Metrics *Metrics
}

// Miss records one deadline miss: invocation inv of task Task was still
// incomplete at its deadline. The overrunning remainder is aborted, so one
// invocation produces at most one miss.
type Miss struct {
	Task     int     `json:"task"`
	Inv      int     `json:"inv"`
	Deadline float64 `json:"deadline"`
	// Remaining is how many cycles were left unexecuted.
	Remaining float64 `json:"remaining"`
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Releases    int     `json:"releases"`
	Completions int     `json:"completions"`
	Misses      int     `json:"misses"`
	Cycles      float64 `json:"cycles"`
	// MaxResponse is the largest observed response time (completion −
	// release) in milliseconds.
	MaxResponse float64 `json:"maxResponse"`
}

// Result reports the outcome of a run.
type Result struct {
	Policy  string  `json:"policy"`
	Horizon float64 `json:"horizon"`

	// Energy components, in cycle·V² units.
	ExecEnergy  float64 `json:"execEnergy"`
	IdleEnergy  float64 `json:"idleEnergy"`
	TotalEnergy float64 `json:"totalEnergy"`
	CyclesDone  float64 `json:"cyclesDone"`
	BusyTime    float64 `json:"busyTime"`
	IdleTime    float64 `json:"idleTime"`
	HaltTime    float64 `json:"haltTime"` // switch stop intervals
	Switches    int     `json:"switches"`
	Releases    int     `json:"releases"`
	Completions int     `json:"completions"`
	// Events counts event-loop iterations: the work the simulator did to
	// produce this result, independent of wall clock.
	Events int `json:"events"`
	// Preemptions counts scheduling decisions that displaced a
	// still-active invocation in favor of another task.
	Preemptions  int    `json:"preemptions"`
	Misses       []Miss `json:"misses,omitempty"`
	Guaranteed   bool   `json:"guaranteed"`
	PerTask      []TaskStats
	PointResTime map[machine.OperatingPoint]float64 `json:"-"`
	// Faults is the injector's fired-fault record; nil when the run was
	// fault-free.
	Faults *fault.Record `json:"faults,omitempty"`
}

// AvgPower returns the average processor power over the run.
func (r *Result) AvgPower() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.TotalEnergy / r.Horizon
}

// MissCount returns the number of deadline misses.
func (r *Result) MissCount() int { return len(r.Misses) }

// Clone returns a deep copy of r that remains valid after the Runner
// that produced r is reused.
func (r *Result) Clone() *Result {
	c := *r
	if r.Misses != nil {
		c.Misses = append([]Miss(nil), r.Misses...)
	}
	if r.PerTask != nil {
		c.PerTask = append([]TaskStats(nil), r.PerTask...)
	}
	if r.PointResTime != nil {
		c.PointResTime = make(map[machine.OperatingPoint]float64, len(r.PointResTime))
		for k, v := range r.PointResTime {
			c.PointResTime[k] = v
		}
	}
	if r.Faults != nil {
		f := *r.Faults
		if r.Faults.TaskOverruns != nil {
			f.TaskOverruns = make(map[int]int, len(r.Faults.TaskOverruns))
			for k, v := range r.Faults.TaskOverruns {
				f.TaskOverruns[k] = v
			}
		}
		if r.Faults.Events != nil {
			f.Events = append([]fault.Event(nil), r.Faults.Events...)
		}
		c.Faults = &f
	}
	return &c
}

// cancelCheckInterval is the number of event-loop iterations between
// cooperative context polls in RunContext. Polling every event would put
// an interface call on the 0-alloc hot path for no benefit — a batch of
// this size costs microseconds of wall time, so a cancelled run still
// returns within its deadline plus one check interval.
const cancelCheckInterval = 64

// Canceled is the typed partial-result error RunContext returns when the
// context ends before the simulation horizon. It wraps the context's
// error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as expected.
type Canceled struct {
	// At is the simulated time (ms) the run had reached.
	At float64
	// Partial is the result accumulated up to At. Like a completed
	// result it aliases the Runner's buffers: it is valid until the next
	// Run/RunContext call on the same Runner (use Result.Clone to keep it).
	Partial *Result
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error implements error.
func (e *Canceled) Error() string {
	return fmt.Sprintf("sim: run cancelled at t=%g of horizon %g: %v",
		e.At, e.Partial.Horizon, e.Cause)
}

// Unwrap returns the context error the cancellation traces to.
func (e *Canceled) Unwrap() error { return e.Cause }

// taskState is per-task runtime state.
type taskState struct {
	nextRelease  float64 // actual time the next release fires (nominal + injected delay)
	nominalRel   float64 // nominal (fault-free) time of the next release; the deadline grid
	deadline     float64 // absolute deadline of the current/most recent invocation
	remaining    float64 // actual cycles left in the current invocation
	used         float64 // actual cycles consumed so far this invocation
	active       bool
	overNotified bool    // OnOverrun already delivered for this invocation
	inv          int     // invocations released so far
	releasedAt   float64 // release time of current invocation
}

// simulator runs one configuration. It implements core.System and
// sched.TaskView. All of its state lives in reusable buffers so a Runner
// can replay configurations without reallocating.
type simulator struct {
	cfg    Config
	ts     *task.Set
	states []taskState
	now    float64
	kind   sched.Kind
	res    Result

	inv      *invariantChecker // nil unless invariant checking is enabled
	invStore invariantChecker  // backing store for inv, reset per run

	hw    machine.OperatingPoint // current hardware operating point
	hwIdx int                    // machine table index of hw, -1 if foreign
	sel   machine.PointSelector

	// timers holds every task keyed by its next release time; ready holds
	// the active tasks keyed by the scheduling discipline (absolute
	// deadline under EDF, period under RM — identical pick order to the
	// sched package's linear scan, ties by task index).
	timers sched.ReadyQueue
	ready  sched.ReadyQueue

	due      []int     // scratch: tasks drained from timers this instant
	released []int     // scratch: release events pending policy callbacks
	resTime  []float64 // per machine-table point index: residency time

	// lastRun is the task index executed by the most recent execution
	// segment (-1 before any), for preemption counting.
	lastRun int

	// Cooperative cancellation: ctx is nil when the run is not
	// cancellable (plain Run), so the hot path pays one nil check per
	// event. ctxTick counts events down to the next poll.
	ctx     context.Context
	ctxTick int
	ctxErr  error
}

// Runner executes simulation runs back to back, reusing all internal
// buffers (task state, heaps, result slices, policy-facing scratch), so
// steady-state runs perform no allocation. Not safe for concurrent use.
//
// The *Result returned by Run aliases the Runner's buffers: it is valid
// until the next Run call on the same Runner. Use Result.Clone to retain
// one beyond that.
type Runner struct {
	s simulator
}

// NewRunner returns an empty Runner; buffers grow on first use.
func NewRunner() *Runner { return &Runner{} }

// Run executes the configuration and returns the result. It is a
// convenience wrapper that runs cfg on a fresh Runner, so the returned
// Result does not share buffers with any other run.
func Run(cfg Config) (*Result, error) {
	return NewRunner().Run(cfg)
}

// RunContext executes the configuration on a fresh Runner under ctx (see
// Runner.RunContext).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return NewRunner().RunContext(ctx, cfg)
}

// Run executes one configuration, reusing the Runner's buffers. The
// returned Result is valid until the next Run call (see Runner).
func (r *Runner) Run(cfg Config) (*Result, error) {
	return r.run(nil, cfg)
}

// RunContext is Run with cooperative cancellation: the event loop polls
// ctx every cancelCheckInterval events and, when the context ends before
// the horizon, stops promptly and returns a *Canceled error carrying the
// partial result. A nil or background context behaves exactly like Run;
// the hot path stays allocation-free either way.
func (r *Runner) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx != nil && ctx.Done() == nil {
		// A context that can never be cancelled (context.Background,
		// context.TODO) needs no polling.
		ctx = nil
	}
	return r.run(ctx, cfg)
}

// run validates cfg, resets every piece of runner state — a previous
// errored or cancelled run must not be able to poison this one — and
// executes the event loop.
func (r *Runner) run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Tasks == nil || cfg.Tasks.Len() == 0 {
		return nil, task.ErrEmptySet
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine spec")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if cfg.Exec == nil {
		cfg.Exec = task.FullWCET{}
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 20 * cfg.Tasks.MaxPeriod()
	}
	wireDistributions(cfg.Policy, cfg.Exec)
	if err := cfg.Policy.Attach(cfg.Tasks, cfg.Machine); err != nil {
		return nil, err
	}

	s := &r.s
	n := cfg.Tasks.Len()
	s.cfg = cfg
	s.ts = cfg.Tasks
	s.now = 0
	s.kind = cfg.Policy.Scheduler()
	s.sel = cfg.Machine.Selector()
	s.states = growZeroed(s.states, n)
	s.resTime = growZeroed(s.resTime, s.sel.Len())
	s.due = s.due[:0]
	s.released = s.released[:0]
	s.timers.Reset(n)
	s.ready.Reset(n)
	s.lastRun = -1
	s.ctx = ctx
	s.ctxTick = 0 // poll before the first event: an expired ctx does no work
	s.ctxErr = nil

	prt := s.res.PointResTime
	if prt == nil {
		prt = make(map[machine.OperatingPoint]float64, s.sel.Len())
	} else {
		clear(prt)
	}
	s.res = Result{
		Policy:       cfg.Policy.Name(),
		Horizon:      cfg.Horizon,
		Guaranteed:   cfg.Policy.Guaranteed(),
		Misses:       s.res.Misses[:0],
		PerTask:      growZeroed(s.res.PerTask, n),
		PointResTime: prt,
	}
	for i := range s.states {
		// Deadline of the "previous" (nonexistent) invocation is the
		// first release: deadline == next release holds from the start.
		// A non-zero phase simply delays the first release. An injected
		// release delay shifts only the actual fire time; the nominal
		// grid (and with it every deadline) stays put.
		phase := cfg.Tasks.Task(i).Phase
		st := taskState{nextRelease: phase, nominalRel: phase, deadline: phase}
		if cfg.Faults != nil {
			st.nextRelease += cfg.Faults.ReleaseDelay(phase, i, 0)
		}
		s.states[i] = st
		s.timerAdd(i, st.nextRelease)
	}
	if cfg.CheckInvariants || testing.Testing() {
		s.invStore = invariantChecker{s: s}
		s.inv = &s.invStore
	} else {
		s.inv = nil
	}
	s.hw = cfg.Policy.Point()
	s.hwIdx = s.sel.Index(s.hw)
	s.inv.checkPoint(s.hw)
	s.inv.checkUtilization()
	s.run()
	if err := s.inv.Err(); err != nil {
		return nil, err
	}
	for i, d := range s.resTime {
		if d > 0 {
			s.res.PointResTime[cfg.Machine.Points[i]] += d
		}
	}
	if cfg.Faults != nil {
		rec := cfg.Faults.Record()
		s.res.Faults = &rec
	}
	if s.ctxErr != nil {
		return nil, &Canceled{At: s.now, Partial: &s.res, Cause: s.ctxErr}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.observe(&s.res, s.resTime, cfg.Machine)
	}
	return &s.res, nil
}

// growZeroed returns a zeroed slice of length n, reusing s's backing
// array when its capacity suffices.
func growZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// --- core.System ---

func (s *simulator) Now() float64 { return s.now }

func (s *simulator) Deadline(i int) float64 {
	st := &s.states[i]
	if st.active {
		return st.deadline
	}
	// The nominal next release: a completed invocation's deadline sits on
	// the deadline grid, which injected release delays never move (the
	// policy plans against the timers it believes in). Fault-free, this
	// equals nextRelease.
	return st.nominalRel
}

// --- sched.TaskView ---

func (s *simulator) NumTasks() int        { return s.ts.Len() }
func (s *simulator) Task(i int) task.Task { return s.ts.Task(i) }
func (s *simulator) Ready(i int) bool     { return s.states[i].active }

// --- engine ---

// timerAdd enqueues task i's next release. The timer heap holds every
// task exactly once outside processReleases, so a failed push is an
// engine bug, not a recoverable condition.
//
//rtdvs:hotpath
func (s *simulator) timerAdd(i int, at float64) {
	if err := s.timers.Push(i, at); err != nil {
		panic(err)
	}
}

// readyKey returns task i's run-queue priority under the attached
// scheduling discipline: absolute deadline for EDF, period for RM —
// exactly the orderings of sched.New(kind).Pick.
//
//rtdvs:hotpath
func (s *simulator) readyKey(i int) float64 {
	if s.kind == sched.RM {
		return s.ts.Task(i).Period
	}
	return s.states[i].deadline
}

// readyAdd enqueues a newly activated task. Activation is always paired
// with deactivation (completion, miss, abort), so a duplicate is an
// engine bug.
//
//rtdvs:hotpath
func (s *simulator) readyAdd(i int) {
	if err := s.ready.Push(i, s.readyKey(i)); err != nil {
		panic(err)
	}
}

// nextReleaseTime returns the earliest pending release.
//
//rtdvs:hotpath
func (s *simulator) nextReleaseTime() float64 {
	return s.timers.PeekKey()
}

// processReleases fires every release scheduled at or before now: checks
// the previous invocation for a deadline miss (aborting any overrun),
// draws the new invocation's actual demand, updates deadlines, and then
// notifies the policy once per released task. Due tasks are drained from
// the timer heap and replayed in ascending task-index order — the event
// order of the original full-scan implementation — so miss records,
// release counters, and policy callbacks are bit-identical to it.
//
//rtdvs:hotpath
func (s *simulator) processReleases() {
	if !fpx.Le(s.timers.PeekKey(), s.now) {
		return
	}
	s.due = s.due[:0]
	for fpx.Le(s.timers.PeekKey(), s.now) {
		s.due = append(s.due, s.timers.Pop())
	}
	sortIndexes(s.due)
	s.released = s.released[:0]
	for _, i := range s.due {
		st := &s.states[i]
		for fpx.Le(st.nextRelease, s.now) {
			if st.active {
				// Overrun: the previous invocation failed to finish by its
				// deadline (== this release). Record and abort it.
				s.res.Misses = append(s.res.Misses, Miss{
					Task: i, Inv: st.inv - 1, Deadline: st.deadline, Remaining: st.remaining,
				})
				s.res.PerTask[i].Misses++
				s.inv.checkMiss(i, st.inv-1, st.deadline)
				st.active = false
				s.ready.Remove(i)
				if s.lastRun == i {
					s.lastRun = -1 // aborted, not preempted
				}
			}
			actual := st.nextRelease // possibly delayed fire time
			rel := st.nominalRel     // nominal tick: the deadline grid
			p := s.ts.Task(i)
			wcet := p.WCET
			c := s.cfg.Exec.Cycles(i, st.inv, wcet)
			if c > wcet {
				c = wcet
			}
			if c <= 0 {
				c = math.SmallestNonzeroFloat64
			}
			if s.cfg.Faults != nil {
				// An injected overrun inflates the demand strictly past
				// the declared worst case the admission test assumed.
				c = s.cfg.Faults.Demand(rel, i, st.inv, wcet, c)
			}
			st.remaining = c
			st.used = 0
			st.overNotified = false
			st.releasedAt = actual
			st.deadline = rel + p.Period
			st.nominalRel = rel + p.Period
			st.nextRelease = st.nominalRel
			if s.cfg.Faults != nil {
				st.nextRelease += s.cfg.Faults.ReleaseDelay(st.nominalRel, i, st.inv+1)
			}
			st.active = true
			st.inv++
			s.res.Releases++
			s.res.PerTask[i].Releases++
			s.readyAdd(i)
			s.released = append(s.released, i)
		}
		s.timerAdd(i, st.nextRelease)
	}
	for _, i := range s.released {
		s.cfg.Policy.OnRelease(s, i)
	}
	if len(s.released) > 0 {
		s.inv.checkUtilization()
	}
}

// sortIndexes insertion-sorts a (short) batch of task indexes drained
// from the timer heap into ascending order.
//
//rtdvs:hotpath
func sortIndexes(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i
		for j > 0 && xs[j-1] > v {
			xs[j] = xs[j-1]
			j--
		}
		xs[j] = v
	}
}

// nextAbortTime returns the earliest pending deadline abort: the
// earliest deadline of an active invocation that precedes its task's
// next (delayed) release. Only injected release delays open such a gap —
// fault-free, deadline == next release and the miss is handled by
// processReleases — so this is called only when faults are enabled.
//
//rtdvs:hotpath
func (s *simulator) nextAbortTime() float64 {
	t := math.Inf(1)
	for i := range s.states {
		st := &s.states[i]
		if st.active && fpx.Lt(st.deadline, st.nextRelease) && st.deadline < t {
			t = st.deadline
		}
	}
	return t
}

// processAborts kills every active invocation whose deadline has passed,
// recording the miss. With injected release delays a deadline can
// precede the (late) next release, and the job must stop at the
// deadline rather than run zombie cycles until the release fires. The
// policy gets no callback for an aborted job — exactly like the
// fault-free abort-at-release path — so its bookkeeping resets at the
// task's next OnRelease.
//
//rtdvs:hotpath
func (s *simulator) processAborts() {
	if s.cfg.Faults == nil {
		return
	}
	for i := range s.states {
		st := &s.states[i]
		if st.active && fpx.Le(st.deadline, s.now) {
			s.res.Misses = append(s.res.Misses, Miss{
				Task: i, Inv: st.inv - 1, Deadline: st.deadline, Remaining: st.remaining,
			})
			s.res.PerTask[i].Misses++
			s.inv.checkMiss(i, st.inv-1, st.deadline)
			st.active = false
			s.ready.Remove(i)
			if s.lastRun == i {
				s.lastRun = -1 // aborted, not preempted
			}
		}
	}
}

// switchTo moves the hardware to the requested operating point, charging
// the mandatory stop interval if an overhead model is configured. Time
// spent halted produces no energy (the processor does not operate during
// the switching interval) but does elapse. With fault injection active
// the transition may be denied or stuck — the hardware then silently
// stays put and the main loop retries at the next scheduling event — or
// its stop interval inflated.
//
//rtdvs:hotpath
func (s *simulator) switchTo(op machine.OperatingPoint) {
	if op == s.hw {
		return
	}
	var halt float64
	if s.cfg.Overhead != nil {
		halt = s.cfg.Overhead.Halt(s.hw, op)
	}
	if s.cfg.Faults != nil {
		ok, adj := s.cfg.Faults.Switch(s.now, s.hw, op, halt)
		if !ok {
			return
		}
		halt = adj
	}
	idx := s.sel.Index(op)
	s.res.Switches++
	if halt > 0 {
		end := math.Min(s.now+halt, s.cfg.Horizon)
		s.record(trace.SwitchHalt, s.now, end, op, idx)
		s.res.HaltTime += end - s.now
		s.now = end
	}
	s.hw, s.hwIdx = op, idx
	s.inv.checkPoint(op)
}

// record accounts a trace segment and the operating point's residency.
// opIdx is op's machine-table index; residency accumulates in a dense
// array on that index, falling back to the result map for a foreign
// point (only reachable when a buggy policy fabricates one — the
// invariant checker flags it, but accounting must not crash first).
//
//rtdvs:hotpath
func (s *simulator) record(taskIdx int, start, end float64, op machine.OperatingPoint, opIdx int) {
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Add(trace.Segment{Task: taskIdx, Start: start, End: end, Point: op})
	}
	if opIdx >= 0 {
		s.resTime[opIdx] += end - start
	} else {
		s.res.PointResTime[op] += end - start
	}
}

// pollCtx reports whether the run's context has ended, checking it only
// every cancelCheckInterval calls so the interface call stays off the
// per-event fast path. Must only be called with a non-nil s.ctx.
//
//rtdvs:hotpath
func (s *simulator) pollCtx() bool {
	if s.ctxTick--; s.ctxTick > 0 {
		return false
	}
	s.ctxTick = cancelCheckInterval
	if err := s.ctx.Err(); err != nil {
		s.ctxErr = err
		return true
	}
	return false
}

// run is the main loop: process releases due now, pick a task, execute it
// until completion or the next release, and account energy along the way.
//
//rtdvs:hotpath
func (s *simulator) run() {
	for fpx.Lt(s.now, s.cfg.Horizon) {
		if s.ctx != nil && s.pollCtx() {
			break
		}
		s.res.Events++
		s.processAborts()
		s.processReleases()

		nextRel := math.Min(s.nextReleaseTime(), s.cfg.Horizon)
		pick := s.ready.Peek()

		if pick < 0 {
			// Idle until the next release at the policy's idle point.
			op := s.cfg.Policy.IdlePoint()
			s.switchTo(op)
			start := s.now
			end := math.Max(nextRel, s.now)
			if end > start {
				dur := end - start
				e := s.cfg.Machine.IdlePower(op) * dur
				s.res.IdleEnergy += e
				s.res.IdleTime += dur
				s.record(trace.Idle, start, end, op, s.sel.Index(op))
				s.now = end
				s.inv.checkEnergy()
			} else {
				s.now = nextRel
			}
			continue
		}

		op := s.cfg.Policy.Point()
		s.switchTo(op)
		if fpx.Ge(s.now, s.cfg.Horizon) {
			break
		}
		if fpx.Le(s.nextReleaseTime(), s.now) {
			// A release became due during the stop interval; process it
			// (and let the policy react) before execution resumes.
			continue
		}
		if s.cfg.Faults != nil && fpx.Le(s.nextAbortTime(), s.now) {
			// A deadline passed during the stop interval; abort the dead
			// job before executing further.
			continue
		}
		nextRel = math.Min(s.nextReleaseTime(), s.cfg.Horizon)

		// A different task taking the processor while the previous one is
		// still mid-invocation is a preemption (under EDF/RM the displaced
		// task cannot have idled in between: idle implies no active tasks).
		if s.lastRun >= 0 && s.lastRun != pick && s.states[s.lastRun].active {
			s.res.Preemptions++
		}
		s.lastRun = pick

		st := &s.states[pick]
		wcet := s.ts.Task(pick).WCET
		finish := s.now + st.remaining/s.hw.Freq
		end := math.Min(finish, nextRel)
		budgetEnd := math.Inf(1)
		if s.cfg.Faults != nil {
			// Stop at pending deadline aborts, and split the segment the
			// moment an overrunning job exhausts its declared budget — the
			// earliest point the overrun is observable.
			end = math.Min(end, s.nextAbortTime())
			if left := wcet - st.used; left > 0 && fpx.Lt(left, st.remaining) {
				budgetEnd = s.now + left/s.hw.Freq
				end = math.Min(end, budgetEnd)
			}
		}
		dur := end - s.now
		cycles := dur * s.hw.Freq
		if cycles > st.remaining || fpx.Le(finish, end) {
			cycles = st.remaining
		} else if fpx.Le(budgetEnd, end) {
			cycles = wcet - st.used
		}
		st.remaining -= cycles
		st.used += cycles
		s.res.CyclesDone += cycles
		s.res.PerTask[pick].Cycles += cycles
		s.res.ExecEnergy += cycles * s.hw.EnergyPerCycle()
		s.res.BusyTime += dur
		s.record(pick, s.now, end, s.hw, s.hwIdx)
		s.now = end
		s.inv.checkEnergy()
		s.cfg.Policy.OnExecute(pick, cycles)

		if fpx.Le(st.remaining, 0) {
			st.remaining = 0
			st.active = false
			s.ready.Remove(pick)
			s.res.Completions++
			s.res.PerTask[pick].Completions++
			if resp := s.now - st.releasedAt; resp > s.res.PerTask[pick].MaxResponse {
				s.res.PerTask[pick].MaxResponse = resp
			}
			// The invocation is gone; a later activation of the same task
			// index must not read as a preemption victim.
			s.lastRun = -1
			s.cfg.Policy.OnCompletion(s, pick, st.used)
			s.inv.checkUtilization()
		} else if s.cfg.Faults != nil && !st.overNotified && fpx.Ge(st.used, wcet) {
			// Budget exhausted with work remaining: a WCET overrun in
			// progress. Tell an overrun-aware policy (core.Contained) so
			// containment engages before the next segment.
			st.overNotified = true
			if oa, ok := s.cfg.Policy.(core.OverrunAware); ok {
				oa.OnOverrun(s, pick)
			}
		}
	}
	s.res.TotalEnergy = s.res.ExecEnergy + s.res.IdleEnergy
	s.inv.checkEnergy()
}
