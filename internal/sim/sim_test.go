package sim

import (
	"encoding/json"
	"math"
	"testing"

	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

func mustPolicy(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunValidation(t *testing.T) {
	ts := task.PaperExample()
	m := machine.Machine0()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil tasks", Config{Machine: m, Policy: mustPolicy(t, "none")}},
		{"nil machine", Config{Tasks: ts, Policy: mustPolicy(t, "none")}},
		{"nil policy", Config{Tasks: ts, Machine: m}},
		{"invalid machine", Config{Tasks: ts, Machine: &machine.Spec{}, Policy: mustPolicy(t, "none")}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Run(c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestDefaultHorizon(t *testing.T) {
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 20*14 {
		t.Errorf("default horizon = %v, want 280 (20×longest period)", res.Horizon)
	}
}

// Hand-computable single-task case: C=2, P=10 at full speed (V=5).
// Over 100 ms: 10 invocations × 2 cycles × 25 = 500 exec energy.
func TestEnergyArithmeticSingleTask(t *testing.T) {
	ts := task.MustSet(task.Task{Period: 10, WCET: 2})
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExecEnergy-500) > 1e-6 {
		t.Errorf("ExecEnergy = %v, want 500", res.ExecEnergy)
	}
	if res.IdleEnergy != 0 {
		t.Errorf("IdleEnergy = %v, want 0 (perfect halt)", res.IdleEnergy)
	}
	if math.Abs(res.CyclesDone-20) > 1e-9 {
		t.Errorf("CyclesDone = %v, want 20", res.CyclesDone)
	}
	if res.Releases != 10 || res.Completions != 10 {
		t.Errorf("releases/completions = %d/%d, want 10/10", res.Releases, res.Completions)
	}
	if res.MissCount() != 0 {
		t.Errorf("misses = %d", res.MissCount())
	}
	if math.Abs(res.BusyTime-20) > 1e-9 || math.Abs(res.IdleTime-80) > 1e-9 {
		t.Errorf("busy/idle = %v/%v, want 20/80", res.BusyTime, res.IdleTime)
	}
}

// The same workload with an imperfect halt: idle energy accrues at the
// policy's idle point. Plain EDF idles at the max point (f=1, V=5):
// 80 ms × 0.5 × 25 = 1000.
func TestIdleLevelAccounting(t *testing.T) {
	ts := task.MustSet(task.Task{Period: 10, WCET: 2})
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0().WithIdleLevel(0.5),
		Policy:  mustPolicy(t, "none"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IdleEnergy-1000) > 1e-6 {
		t.Errorf("IdleEnergy = %v, want 1000", res.IdleEnergy)
	}
	if math.Abs(res.TotalEnergy-1500) > 1e-6 {
		t.Errorf("TotalEnergy = %v, want 1500", res.TotalEnergy)
	}

	// A dynamic policy drops to the minimum point while idle: the task
	// runs at 0.5 (U=0.2): exec 20 cycles × 9; idle 60 ms × 0.5 × 4.5.
	res2, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0().WithIdleLevel(0.5),
		Policy:  mustPolicy(t, "ccEDF"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantExec := 20.0 * 9
	wantIdle := 60.0 * 0.5 * 4.5
	if math.Abs(res2.ExecEnergy-wantExec) > 1e-6 {
		t.Errorf("ccEDF ExecEnergy = %v, want %v", res2.ExecEnergy, wantExec)
	}
	if math.Abs(res2.IdleEnergy-wantIdle) > 1e-6 {
		t.Errorf("ccEDF IdleEnergy = %v, want %v", res2.IdleEnergy, wantIdle)
	}
}

// Figure 2's illustration: forcing the RM schedule to 0.75 makes T3 miss
// its deadline at 14 ms. A fixed-frequency policy reproduces the panel.
type fixedPolicy struct {
	op   machine.OperatingPoint
	kind sched.Kind
	m    *machine.Spec
}

func (p *fixedPolicy) Name() string                           { return "fixed" }
func (p *fixedPolicy) Scheduler() sched.Kind                  { return p.kind }
func (p *fixedPolicy) Guaranteed() bool                       { return false }
func (p *fixedPolicy) OnRelease(core.System, int)             {}
func (p *fixedPolicy) OnCompletion(core.System, int, float64) {}
func (p *fixedPolicy) OnExecute(int, float64)                 {}
func (p *fixedPolicy) Point() machine.OperatingPoint          { return p.op }
func (p *fixedPolicy) IdlePoint() machine.OperatingPoint      { return p.op }
func (p *fixedPolicy) Attach(ts *task.Set, m *machine.Spec) error {
	p.m = m
	return nil
}

func TestStaticRMFailsAt075AsInFigure2(t *testing.T) {
	m := machine.Machine0()
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: m,
		Policy:  &fixedPolicy{op: m.Points[1], kind: sched.RM}, // 0.75
		Exec:    task.FullWCET{},                               // worst case, as in Figure 2
		Horizon: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() == 0 {
		t.Fatal("RM at 0.75 must miss a deadline (Figure 2)")
	}
	miss := res.Misses[0]
	if miss.Task != 2 || miss.Deadline != 14 {
		t.Errorf("first miss = task %d at %v, want T3 at 14", miss.Task, miss.Deadline)
	}

	// At full speed the same schedule meets every deadline.
	res2, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: m,
		Policy:  &fixedPolicy{op: m.Max(), kind: sched.RM},
		Exec:    task.FullWCET{},
		Horizon: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MissCount() != 0 {
		t.Errorf("RM at 1.0 missed %d deadlines", res2.MissCount())
	}
}

// EDF at 0.75 meets all deadlines in the worst case (Figure 2, top).
func TestStaticEDFWorksAt075AsInFigure2(t *testing.T) {
	m := machine.Machine0()
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: m,
		Policy:  &fixedPolicy{op: m.Points[1], kind: sched.EDF},
		Exec:    task.FullWCET{},
		Horizon: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() != 0 {
		t.Errorf("EDF at 0.75 missed %d deadlines: %+v", res.MissCount(), res.Misses)
	}
}

// Time must be conserved: busy + idle + halt = horizon.
func TestTimeConservation(t *testing.T) {
	for _, name := range core.Names() {
		res, err := Run(Config{
			Tasks:   task.PaperExample(),
			Machine: machine.Machine0(),
			Policy:  mustPolicy(t, name),
			Exec:    task.PaperExampleExec(),
			Horizon: 160,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum := res.BusyTime + res.IdleTime + res.HaltTime
		if math.Abs(sum-res.Horizon) > 1e-6 {
			t.Errorf("%s: busy+idle+halt = %v, want %v", name, sum, res.Horizon)
		}
		if math.Abs(res.TotalEnergy-(res.ExecEnergy+res.IdleEnergy)) > 1e-9 {
			t.Errorf("%s: energy components do not sum", name)
		}
	}
}

// Switch overheads consume time (not energy) and can be bounded by two
// transitions per invocation.
func TestSwitchOverheadAccounting(t *testing.T) {
	oh := machine.SwitchOverhead{FreqOnly: 0.041, VoltageChange: 0.4}
	res, err := Run(Config{
		Tasks:    task.PaperExample(),
		Machine:  machine.Machine0(),
		Policy:   mustPolicy(t, "ccEDF"),
		Exec:     task.PaperExampleExec(),
		Horizon:  160,
		Overhead: &oh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatal("ccEDF on this workload must switch")
	}
	if res.HaltTime <= 0 {
		t.Error("switching with overhead must consume halt time")
	}
	if res.HaltTime > float64(res.Switches)*0.4+1e-9 {
		t.Errorf("halt time %v exceeds switches × worst case", res.HaltTime)
	}
	// Energy is conserved: halted transitions consume none.
	if math.Abs(res.TotalEnergy-(res.ExecEnergy+res.IdleEnergy)) > 1e-9 {
		t.Error("halt intervals must not add energy")
	}
}

func TestNoOverheadMeansNoHaltTime(t *testing.T) {
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "laEDF"),
		Exec:    task.PaperExampleExec(),
		Horizon: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltTime != 0 {
		t.Errorf("HaltTime = %v without an overhead model", res.HaltTime)
	}
}

// At most two frequency switches per task per invocation (Section 2.6).
func TestSwitchBudgetPerInvocation(t *testing.T) {
	for _, name := range core.Names() {
		res, err := Run(Config{
			Tasks:   task.PaperExample(),
			Machine: machine.Machine0(),
			Policy:  mustPolicy(t, name),
			Exec:    task.PaperExampleExec(),
			Horizon: 560,
		})
		if err != nil {
			t.Fatal(err)
		}
		limit := 2*res.Releases + 2
		if res.Switches > limit {
			t.Errorf("%s: %d switches for %d releases (limit %d)", name, res.Switches, res.Releases, limit)
		}
	}
}

// The recorded trace must tile the horizon: contiguous, non-overlapping
// segments whose busy time matches the result.
func TestTraceConsistency(t *testing.T) {
	for _, name := range core.Names() {
		var rec trace.Recorder
		res, err := Run(Config{
			Tasks:    task.PaperExample(),
			Machine:  machine.Machine0(),
			Policy:   mustPolicy(t, name),
			Exec:     task.PaperExampleExec(),
			Horizon:  160,
			Recorder: &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		segs := rec.Segments()
		if len(segs) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		prevEnd := 0.0
		for i, s := range segs {
			if s.Start < prevEnd-1e-9 {
				t.Fatalf("%s: segment %d overlaps previous (start %v < %v)", name, i, s.Start, prevEnd)
			}
			if s.End <= s.Start {
				t.Fatalf("%s: segment %d non-positive", name, i)
			}
			if s.End > res.Horizon+1e-9 {
				t.Fatalf("%s: segment %d beyond horizon", name, i)
			}
			prevEnd = s.End
		}
		if busy := rec.BusyTime(); math.Abs(busy-res.BusyTime) > 1e-6 {
			t.Errorf("%s: trace busy %v != result busy %v", name, busy, res.BusyTime)
		}
	}
}

// Per-task stats must be internally consistent with the totals.
func TestPerTaskStats(t *testing.T) {
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "ccEDF"),
		Exec:    task.PaperExampleExec(),
		Horizon: 280, // one hyperperiod
	})
	if err != nil {
		t.Fatal(err)
	}
	var rel, comp int
	var cycles float64
	for i, st := range res.PerTask {
		rel += st.Releases
		comp += st.Completions
		cycles += st.Cycles
		if st.MaxResponse > task.PaperExample().Task(i).Period {
			t.Errorf("task %d response %v exceeds period", i, st.MaxResponse)
		}
	}
	if rel != res.Releases || comp != res.Completions {
		t.Errorf("per-task sums %d/%d != totals %d/%d", rel, comp, res.Releases, res.Completions)
	}
	if math.Abs(cycles-res.CyclesDone) > 1e-6 {
		t.Errorf("per-task cycles %v != total %v", cycles, res.CyclesDone)
	}
	// Expected invocations in 280 ms: 35 + 28 + 20.
	if res.Releases != 35+28+20 {
		t.Errorf("releases = %d, want 83", res.Releases)
	}
}

// Residency must cover the entire horizon.
func TestPointResidency(t *testing.T) {
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "laEDF"),
		Exec:    task.PaperExampleExec(),
		Horizon: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, d := range res.PointResTime {
		total += d
	}
	if math.Abs(total-res.Horizon) > 1e-6 {
		t.Errorf("residency sums to %v, want %v", total, res.Horizon)
	}
}

// A task finishing exactly at its deadline (U=1 single task at full
// speed) must not be counted as a miss — the boundary case for the
// event-time epsilon.
func TestCompletionExactlyAtDeadline(t *testing.T) {
	ts := task.MustSet(task.Task{Period: 5, WCET: 5})
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() != 0 {
		t.Errorf("exact-deadline completions recorded as %d misses", res.MissCount())
	}
	if res.Completions != 20 {
		t.Errorf("completions = %d, want 20", res.Completions)
	}
}

// Same, at a scaled frequency: 3/0.75 = 4 ms of wall time against a 4 ms
// period, repeatedly — accumulating float error must not produce misses.
func TestExactFitAtScaledFrequencyNoDrift(t *testing.T) {
	ts := task.MustSet(task.Task{Period: 4, WCET: 3})
	m := machine.Machine0()
	res, err := Run(Config{
		Tasks:   ts,
		Machine: m,
		Policy:  &fixedPolicy{op: m.Points[1], kind: sched.EDF}, // 0.75
		Horizon: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() != 0 {
		t.Errorf("float drift caused %d misses", res.MissCount())
	}
	if res.Completions != 1000 {
		t.Errorf("completions = %d, want 1000", res.Completions)
	}
}

// An overloaded set must produce misses and abort overruns rather than
// hanging or double-counting.
func TestOverloadProducesMisses(t *testing.T) {
	ts := task.MustSet(
		task.Task{Period: 2, WCET: 2},
		task.Task{Period: 4, WCET: 2},
	) // U = 1.5
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "none"),
		Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guaranteed {
		t.Error("overloaded set reported as guaranteed")
	}
	if res.MissCount() == 0 {
		t.Error("overload must miss deadlines")
	}
	// Only the EDF-lowest-priority task can miss here: T1 always wins.
	for _, m := range res.Misses {
		if m.Task != 1 {
			t.Errorf("unexpected miss on task %d", m.Task)
		}
	}
}

// Tasks released simultaneously must all be released before the policy
// callbacks fire (deadline view consistency) — exercised by equal periods.
func TestSimultaneousReleases(t *testing.T) {
	ts := task.MustSet(
		task.Task{Period: 10, WCET: 2},
		task.Task{Period: 10, WCET: 3},
		task.Task{Period: 10, WCET: 1},
	)
	res, err := Run(Config{
		Tasks:   ts,
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "laEDF"),
		Horizon: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() != 0 {
		t.Errorf("%d misses with synchronized releases", res.MissCount())
	}
	if res.Releases != 60 {
		t.Errorf("releases = %d, want 60", res.Releases)
	}
}

// Results must survive a JSON round trip (the CLI's -json output).
func TestResultJSONRoundTrip(t *testing.T) {
	res, err := Run(Config{
		Tasks:   task.PaperExample(),
		Machine: machine.Machine0(),
		Policy:  mustPolicy(t, "ccEDF"),
		Exec:    task.PaperExampleExec(),
		Horizon: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalEnergy != res.TotalEnergy || back.Policy != res.Policy ||
		back.Switches != res.Switches || back.Releases != res.Releases {
		t.Errorf("round trip lost data: %+v vs %+v", back, res)
	}
}
