package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile is an online quantile estimator implementing the P² algorithm
// (Jain & Chlamtac, CACM 1985): it tracks a target quantile of a stream
// in O(1) space by maintaining five markers whose heights approximate the
// empirical quantile function with piecewise-parabolic interpolation.
//
// The statistical RT-DVS extension uses one estimator per task to learn
// the distribution of actual computation demand, enabling the
// probabilistic deadline guarantees the paper lists as future work.
type Quantile struct {
	p       float64    // target quantile in (0, 1)
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments
	initial []float64  // first five observations, sorted lazily
}

// NewQuantile creates an estimator for the p-th quantile, 0 < p < 1.
func NewQuantile(p float64) (*Quantile, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("stats: quantile %v outside (0, 1)", p)
	}
	return &Quantile{
		p:       p,
		inc:     [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		initial: make([]float64, 0, 5),
	}, nil
}

// P returns the target quantile.
func (q *Quantile) P() float64 { return q.p }

// N returns the number of observations.
func (q *Quantile) N() int { return q.n }

// Add folds one observation into the estimator.
func (q *Quantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}

	// Find the cell containing x and bump marker positions.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback height prediction.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.heights[i] + d*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With fewer than five observations
// it falls back to the empirical quantile of what has been seen; with
// none it returns NaN.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if len(q.initial) < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		idx := int(q.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return q.heights[2]
}

// Max returns the largest observation seen (NaN when empty). The
// statistical policies use it as a conservative cap.
func (q *Quantile) Max() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if len(q.initial) < 5 {
		m := math.Inf(-1)
		for _, x := range q.initial {
			m = math.Max(m, x)
		}
		return m
	}
	return q.heights[4]
}
