package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewQuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("NewQuantile(%v) accepted", p)
		}
	}
	q, err := NewQuantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if q.P() != 0.9 {
		t.Errorf("P = %v", q.P())
	}
}

func TestQuantileEmptyAndSmall(t *testing.T) {
	q, _ := NewQuantile(0.5)
	if !math.IsNaN(q.Value()) || !math.IsNaN(q.Max()) {
		t.Error("empty estimator should return NaN")
	}
	q.Add(3)
	q.Add(1)
	q.Add(2)
	if q.N() != 3 {
		t.Errorf("N = %d", q.N())
	}
	// Small-sample fallback: empirical quantile of {1,2,3}.
	if v := q.Value(); v != 2 {
		t.Errorf("median of 3 = %v, want 2", v)
	}
	if m := q.Max(); m != 3 {
		t.Errorf("max = %v, want 3", m)
	}
}

// The classic P² acceptance check: estimates on uniform data converge to
// the true quantile within a small relative error.
func TestQuantileUniformConvergence(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95} {
		q, _ := NewQuantile(p)
		r := rand.New(rand.NewSource(int64(p * 1000)))
		for i := 0; i < 20000; i++ {
			q.Add(r.Float64())
		}
		if got := q.Value(); math.Abs(got-p) > 0.03 {
			t.Errorf("p=%v: estimate %v", p, got)
		}
	}
}

func TestQuantileExponentialConvergence(t *testing.T) {
	q, _ := NewQuantile(0.9)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		q.Add(r.ExpFloat64())
	}
	want := -math.Log(0.1) // 0.9-quantile of Exp(1) ≈ 2.3026
	if got := q.Value(); math.Abs(got-want)/want > 0.08 {
		t.Errorf("Exp(1) 0.9-quantile = %v, want ≈%v", got, want)
	}
}

// Against a sorted sample the estimate must track the empirical quantile
// for a variety of seeds and quantiles.
func TestQuantileTracksEmpiricalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		p := 0.05 + 0.9*r.Float64()
		q, _ := NewQuantile(p)
		n := 2000 + r.Intn(3000)
		xs := make([]float64, n)
		for i := range xs {
			// Mix of scales to stress the parabolic interpolation.
			xs[i] = r.Float64() * math.Pow(10, float64(r.Intn(3)))
			q.Add(xs[i])
		}
		sort.Float64s(xs)
		emp := xs[int(p*float64(n))]
		got := q.Value()
		// P² is approximate; compare as positions within the sample.
		rank := sort.SearchFloat64s(xs, got)
		if math.Abs(float64(rank)/float64(n)-p) > 0.08 {
			t.Errorf("trial %d p=%.2f: estimate %v sits at rank %.3f (empirical %v)",
				trial, p, got, float64(rank)/float64(n), emp)
		}
	}
}

func TestQuantileMaxTracksMaximum(t *testing.T) {
	q, _ := NewQuantile(0.5)
	r := rand.New(rand.NewSource(9))
	max := math.Inf(-1)
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()
		max = math.Max(max, x)
		q.Add(x)
	}
	if q.Max() != max {
		t.Errorf("Max = %v, want %v", q.Max(), max)
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	q1, _ := NewQuantile(0.25)
	q2, _ := NewQuantile(0.75)
	for _, x := range xs {
		q1.Add(x)
		q2.Add(x)
	}
	if q1.Value() >= q2.Value() {
		t.Errorf("q(0.25)=%v not below q(0.75)=%v", q1.Value(), q2.Value())
	}
}

func TestQuantileConstantStream(t *testing.T) {
	q, _ := NewQuantile(0.9)
	for i := 0; i < 100; i++ {
		q.Add(7)
	}
	if q.Value() != 7 || q.Max() != 7 {
		t.Errorf("constant stream: value %v max %v", q.Value(), q.Max())
	}
}
