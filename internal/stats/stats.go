// Package stats provides the small statistical and formatting helpers the
// experiment harness uses: streaming mean/variance accumulators and plain
// text table rendering for the regenerated figures and tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Accumulator computes streaming count, mean and variance (Welford).
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		a.min = math.Min(a.min, x)
		a.max = math.Max(a.max, x)
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Table renders rows of columns as an aligned plain-text table. The first
// row is treated as the header and separated by a rule.
type Table struct {
	rows [][]string
}

// Header sets the column titles.
func (t *Table) Header(cols ...string) { t.rows = append([][]string{cols}, t.rows...) }

// Row appends a data row; cells may be strings or anything fmt can print.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rowf appends a row of pre-formatted cells.
func (t *Table) Rowf(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, r := range t.rows[1:] {
		writeRow(r)
	}
	return b.String()
}
