package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.N() != 0 || a.Var() != 0 {
		t.Error("zero-value accumulator not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Sample variance of the classic data set: 32/7.
	if math.Abs(a.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", a.Var(), 32.0/7)
	}
	if math.Abs(a.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v", a.Stddev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Var() != 0 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Errorf("single value stats wrong: %+v", a)
	}
}

// Welford must agree with the naive two-pass computation.
func TestAccumulatorMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e10 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(a.Mean()-mean) < 1e-9*scale &&
			math.Abs(a.Var()-naiveVar) < 1e-6*math.Max(1, naiveVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.Header("name", "value")
	tb.Row("alpha", 1.25)
	tb.Row("b", 42)
	tb.Rowf("cell", "preformatted")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "1.25") {
		t.Errorf("float row = %q", lines[2])
	}
	// Columns must align: every "value" column starts at the same offset.
	col := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col:], "1.25") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Error("empty table should render empty")
	}
}
