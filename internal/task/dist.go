package task

import (
	"fmt"
	"math"
	"strings"

	"rtdvs/internal/fpx"
)

// This file adds per-task execution-time *distributions* to the exec-model
// family: beta, bimodal and empirical-histogram demand models, drawn by a
// deterministic sampler on the same splitmix64 key scheme the fault
// injector uses. Every draw is a pure function of (seed, task, invocation)
// — never of call order — so a distribution-backed model can be shared
// across batch lanes, replayed across policies, and still produce
// bit-identical demand sequences.

// Dist describes a demand distribution over the *fraction* of WCET an
// invocation consumes. Implementations are immutable value types; their
// support is (0, 1] (a zero-length invocation degenerates the model, so
// samplers clamp to a sliver of work, mirroring UniformFraction).
type Dist interface {
	// Mean returns the expected fraction E[X].
	Mean() float64
	// CDF returns P[X ≤ x] for x in [0, 1].
	CDF(x float64) float64
	// Quantile returns the p-th quantile for p in [0, 1]; it is the
	// (generalized) inverse of CDF and the basis of the keyed sampler.
	Quantile(p float64) float64
	// String names the distribution in ParseExec syntax ("beta=2,5").
	String() string
}

// minFrac is the smallest demand fraction a sampler emits: enough work
// that completion events still fire in order (see UniformFraction).
const minFrac = 1e-9

// --- deterministic keyed sampling (splitmix64, as in internal/fault) ---

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator,
// the same mixing function internal/fault keys its draws with.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// distDrawClass separates the demand-sampling stream from the fault
// injector's draw classes (whose class constants are small integers
// multiplied by the same mixing factor).
const distDrawClass uint64 = 0x5D15A24BAED4963E

// sampleU01 returns a uniform draw in [0, 1) keyed by (seed, ti, inv).
func sampleU01(seed int64, ti, inv int) float64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ distDrawClass)
	h = splitmix64(h ^ uint64(int64(ti))*0x9FB21C651E98DF25)
	h = splitmix64(h ^ uint64(int64(inv))*0xD6E8FEB86659FD93)
	// 53 high bits -> [0, 1) double.
	return float64(h>>11) / (1 << 53)
}

// clampFrac forces a sampled fraction into the legal support (minFrac, 1].
func clampFrac(f float64) float64 {
	if math.IsNaN(f) || f < minFrac {
		return minFrac
	}
	if f > 1 {
		return 1
	}
	return f
}

// --- Beta distribution ---

// Beta is the Beta(α, β) demand distribution on (0, 1]: the classic
// two-parameter family for bounded execution times (α=β=1 is uniform;
// α>1, β>1 is unimodal; α<1 or β<1 pushes mass to the edges). Sampling
// is by inverse CDF on a single keyed uniform draw.
type Beta struct {
	A, B float64
}

// NewBeta validates the shape parameters. Both must be positive and
// finite; values above 1e6 are rejected (the continued-fraction CDF
// loses accuracy far before that).
func NewBeta(a, b float64) (Beta, error) {
	if !(a > 0) || !(b > 0) || math.IsInf(a, 0) || math.IsInf(b, 0) || a > 1e6 || b > 1e6 {
		return Beta{}, fmt.Errorf("task: beta shapes must lie in (0, 1e6], got a=%v b=%v", a, b)
	}
	return Beta{A: a, B: b}, nil
}

// Mean implements Dist: E[X] = α/(α+β).
func (d Beta) Mean() float64 { return d.A / (d.A + d.B) }

// CDF implements Dist: the regularized incomplete beta function I_x(α, β).
func (d Beta) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return regIncBeta(d.A, d.B, x)
}

// Quantile implements Dist by monotone bisection on the CDF: 64
// iterations pin the result to ~2^-64 of the unit interval, far below
// the CDF's own accuracy, with no rejection loop to bound.
func (d Beta) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 64; i++ {
		mid := 0.5 * (lo + hi)
		if regIncBeta(d.A, d.B, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

func (d Beta) String() string { return fmt.Sprintf("beta=%g,%g", d.A, d.B) }

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the standard continued-fraction expansion (Numerical Recipes
// §6.4), using the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to stay in the
// rapidly converging region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1−x)^b / (a·B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lnPre := lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x)
	if x < (a+1)/(a+b+2) {
		return math.Exp(lnPre) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lnPre)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction by the
// modified Lentz method. Iteration is bounded; for the parameter ranges
// NewBeta admits it converges in a handful of steps.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// --- Bimodal distribution ---

// Bimodal is a two-mode mixture: with probability 1−HiProb the demand is
// uniform in [Lo−Width, Lo+Width], otherwise uniform in
// [Hi−Width, Hi+Width] (both intervals clipped to the unit support). It
// models workloads with a cheap common case and an expensive rare case —
// the regime where quantile-based reservation beats mean-based.
type Bimodal struct {
	Lo, Hi, HiProb, Width float64
}

// NewBimodal validates the mixture: modes in (0, 1], Lo ≤ Hi, HiProb in
// [0, 1], Width in [0, 0.5].
func NewBimodal(lo, hi, hiProb, width float64) (Bimodal, error) {
	switch {
	case !(lo > 0) || lo > 1 || !(hi > 0) || hi > 1 || math.IsNaN(lo) || math.IsNaN(hi):
		return Bimodal{}, fmt.Errorf("task: bimodal modes must lie in (0, 1], got lo=%v hi=%v", lo, hi)
	case lo > hi:
		return Bimodal{}, fmt.Errorf("task: bimodal modes must satisfy lo ≤ hi, got lo=%v hi=%v", lo, hi)
	case !(hiProb >= 0) || hiProb > 1:
		return Bimodal{}, fmt.Errorf("task: bimodal hiProb must lie in [0, 1], got %v", hiProb)
	case !(width >= 0) || width > 0.5 || math.IsNaN(width):
		return Bimodal{}, fmt.Errorf("task: bimodal width must lie in [0, 0.5], got %v", width)
	}
	return Bimodal{Lo: lo, Hi: hi, HiProb: hiProb, Width: width}, nil
}

// mode returns the clipped interval [a, b] around center c.
func (d Bimodal) mode(c float64) (a, b float64) {
	a, b = c-d.Width, c+d.Width
	if a < 0 {
		a = 0
	}
	if b > 1 {
		b = 1
	}
	return a, b
}

// Mean implements Dist (means of the clipped intervals, mixed).
func (d Bimodal) Mean() float64 {
	la, lb := d.mode(d.Lo)
	ha, hb := d.mode(d.Hi)
	return (1-d.HiProb)*0.5*(la+lb) + d.HiProb*0.5*(ha+hb)
}

// CDF implements Dist.
func (d Bimodal) CDF(x float64) float64 {
	cdfU := func(a, b float64) float64 {
		switch {
		case x <= a:
			return 0
		case x >= b:
			return 1
		default:
			return (x - a) / (b - a)
		}
	}
	la, lb := d.mode(d.Lo)
	ha, hb := d.mode(d.Hi)
	lc, hc := 1.0, 1.0
	if lb > la {
		lc = cdfU(la, lb)
	} else if x < la {
		lc = 0
	}
	if hb > ha {
		hc = cdfU(ha, hb)
	} else if x < ha {
		hc = 0
	}
	return (1-d.HiProb)*lc + d.HiProb*hc
}

// Quantile implements Dist: the draw first selects the mode (the low
// mode owns the probability mass [0, 1−HiProb)), then positions within
// it — a piecewise-linear exact inverse, no iteration needed.
func (d Bimodal) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	var a, b, u float64
	if lp := 1 - d.HiProb; p < lp || fpx.Eq(lp, 1) {
		a, b = d.mode(d.Lo)
		if lp > 0 {
			u = p / lp
		}
	} else {
		a, b = d.mode(d.Hi)
		if d.HiProb > 0 {
			u = (p - lp) / d.HiProb
		}
	}
	if u > 1 {
		u = 1
	}
	return a + u*(b-a)
}

func (d Bimodal) String() string {
	return fmt.Sprintf("bimodal=%g,%g,%g", d.Lo, d.Hi, d.HiProb)
}

// --- Empirical histogram ---

// Histogram is an empirical demand distribution: Weights[i] is the
// relative mass of the i-th of k equal-width bins spanning (0, 1], with
// demand uniform within a bin. It is how measured execution-time
// profiles (the paper's Section 4 traces) plug into the simulator.
type Histogram struct {
	Weights []float64
	total   float64
}

// maxHistBins bounds the histogram resolution (and the parse surface).
const maxHistBins = 64

// NewHistogram validates the bin weights: 1..maxHistBins finite
// non-negative weights with positive total mass.
func NewHistogram(weights []float64) (Histogram, error) {
	if len(weights) == 0 || len(weights) > maxHistBins {
		return Histogram{}, fmt.Errorf("task: histogram needs 1..%d bins, got %d", maxHistBins, len(weights))
	}
	var total float64
	for i, w := range weights {
		if !(w >= 0) || math.IsInf(w, 0) {
			return Histogram{}, fmt.Errorf("task: histogram weight %d must be finite and ≥ 0, got %v", i, w)
		}
		total += w
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return Histogram{}, fmt.Errorf("task: histogram needs positive finite total mass, got %v", total)
	}
	return Histogram{Weights: append([]float64(nil), weights...), total: total}, nil
}

// Mean implements Dist (bin midpoints weighted by mass).
func (d Histogram) Mean() float64 {
	k := float64(len(d.Weights))
	var m float64
	for i, w := range d.Weights {
		mid := (float64(i) + 0.5) / k
		m += w * mid
	}
	return m / d.total
}

// CDF implements Dist.
func (d Histogram) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	k := float64(len(d.Weights))
	var acc float64
	for i, w := range d.Weights {
		lo, hi := float64(i)/k, (float64(i)+1)/k
		if x >= hi {
			acc += w
			continue
		}
		if x > lo {
			acc += w * (x - lo) / (hi - lo)
		}
		break
	}
	return acc / d.total
}

// Quantile implements Dist: walk the cumulative mass to the target bin,
// then interpolate linearly within it.
func (d Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	target := p * d.total
	k := float64(len(d.Weights))
	var acc float64
	for i, w := range d.Weights {
		if acc+w >= target && w > 0 {
			frac := (target - acc) / w
			return (float64(i) + frac) / k
		}
		acc += w
	}
	return 1
}

func (d Histogram) String() string {
	parts := make([]string, len(d.Weights))
	for i, w := range d.Weights {
		parts[i] = fmt.Sprintf("%g", w)
	}
	return "hist=" + strings.Join(parts, ",")
}

// --- distribution-backed exec model ---

// Distributions exposes per-task demand distributions. The
// distribution-backed exec models implement it, so a stochastic policy
// (core.StochasticSelect) can plan against the exact model driving the
// simulation.
type Distributions interface {
	// TaskDist returns the demand distribution of task index ti.
	TaskDist(ti int) Dist
}

// DistExec samples every invocation's demand from Dist by inverse CDF on
// a keyed uniform draw: Cycles(ti, inv, wcet) is a pure function of
// (Seed, ti, inv), independent of call order, so the model is safely
// shared across runs, policies and batch lanes.
type DistExec struct {
	D    Dist
	Seed int64
}

// Cycles implements ExecModel.
func (m DistExec) Cycles(ti, inv int, wcet float64) float64 {
	u := sampleU01(m.Seed, ti, inv)
	return clampFrac(m.D.Quantile(u)) * wcet
}

// TaskDist implements Distributions: one distribution models all tasks,
// like the other task-uniform exec models.
func (m DistExec) TaskDist(int) Dist { return m.D }

// String implements ExecModel.
func (m DistExec) String() string { return m.D.String() }
