package task

import (
	"math"
	"strings"
	"testing"

	"rtdvs/internal/machine"
)

func TestBetaMomentsAndInverse(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{1, 1}, {2, 2}, {2, 5}, {5, 2}, {0.5, 0.5}, {8, 1}, {1, 8},
	}
	for _, c := range cases {
		d, err := NewBeta(c.a, c.b)
		if err != nil {
			t.Fatalf("NewBeta(%v,%v): %v", c.a, c.b, err)
		}
		if got, want := d.Mean(), c.a/(c.a+c.b); math.Abs(got-want) > 1e-12 {
			t.Errorf("Beta(%v,%v).Mean() = %v, want %v", c.a, c.b, got, want)
		}
		// CDF∘Quantile is identity (to the CDF's own accuracy).
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x := d.Quantile(p)
			if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
				t.Errorf("Beta(%v,%v): CDF(Quantile(%v)) = %v", c.a, c.b, p, got)
			}
		}
		// CDF is monotone over the support.
		prev := -1.0
		for x := 0.0; x <= 1.0+1e-12; x += 1.0 / 64 {
			v := d.CDF(x)
			if v < prev-1e-12 {
				t.Fatalf("Beta(%v,%v): CDF not monotone at %v", c.a, c.b, x)
			}
			prev = v
		}
	}
}

func TestBetaUniformSpecialCase(t *testing.T) {
	// Beta(1,1) is uniform: CDF(x) = x exactly (to numerical accuracy).
	d, _ := NewBeta(1, 1)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := d.CDF(x); math.Abs(got-x) > 1e-10 {
			t.Errorf("Beta(1,1).CDF(%v) = %v", x, got)
		}
	}
}

func TestNewBetaRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{
		{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}, {1, math.Inf(1)}, {1e7, 1},
	} {
		if _, err := NewBeta(c.a, c.b); err == nil {
			t.Errorf("NewBeta(%v,%v): want error", c.a, c.b)
		}
	}
}

func TestBimodalQuantileAndMass(t *testing.T) {
	d, err := NewBimodal(0.2, 0.9, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 90% of draws land in the low mode, 10% in the high mode.
	if q := d.Quantile(0.5); q < 0.15 || q > 0.25 {
		t.Errorf("median %v outside low mode", q)
	}
	if q := d.Quantile(0.95); q < 0.85 || q > 0.95 {
		t.Errorf("p95 %v outside high mode", q)
	}
	want := 0.9*0.2 + 0.1*0.9
	if got := d.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	for _, p := range []float64{0.05, 0.5, 0.89, 0.91, 0.99} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestBimodalDegenerateWidths(t *testing.T) {
	// Width 0 makes both modes point masses; the quantile must still
	// partition the probability space between them.
	d, err := NewBimodal(0.3, 0.8, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q := d.Quantile(0.5); q != 0.3 {
		t.Errorf("Quantile(0.5) = %v, want 0.3", q)
	}
	if q := d.Quantile(0.9); q != 0.8 {
		t.Errorf("Quantile(0.9) = %v, want 0.8", q)
	}
	// HiProb 1 routes everything to the high mode.
	d2, err := NewBimodal(0.3, 0.8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q := d2.Quantile(0.1); q != 0.8 {
		t.Errorf("HiProb=1: Quantile(0.1) = %v, want 0.8", q)
	}
}

func TestNewBimodalRejectsBadParams(t *testing.T) {
	for _, c := range []struct{ lo, hi, p, w float64 }{
		{0, 0.5, 0.1, 0.05}, {0.5, 1.1, 0.1, 0.05}, {0.8, 0.2, 0.1, 0.05},
		{0.2, 0.8, -0.1, 0.05}, {0.2, 0.8, 1.1, 0.05}, {0.2, 0.8, 0.5, 0.6},
		{math.NaN(), 0.8, 0.5, 0.05}, {0.2, 0.8, 0.5, math.NaN()},
	} {
		if _, err := NewBimodal(c.lo, c.hi, c.p, c.w); err == nil {
			t.Errorf("NewBimodal(%v,%v,%v,%v): want error", c.lo, c.hi, c.p, c.w)
		}
	}
}

func TestHistogramQuantileCDF(t *testing.T) {
	// Four equal-width bins with weights 1,0,0,3: 25% of mass in
	// (0, .25], 75% in (.75, 1].
	d, err := NewHistogram([]float64{1, 0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if q := d.Quantile(0.125); math.Abs(q-0.125) > 1e-12 {
		t.Errorf("Quantile(0.125) = %v, want 0.125", q)
	}
	if q := d.Quantile(0.5); q < 0.75 || q > 1 {
		t.Errorf("Quantile(0.5) = %v, want in high bin", q)
	}
	want := (1*0.125 + 3*0.875) / 4
	if got := d.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNewHistogramRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
		make([]float64, maxHistBins+1),
	}
	cases[len(cases)-1][0] = 1 // over-long but otherwise valid
	for _, ws := range cases {
		if _, err := NewHistogram(ws); err == nil {
			t.Errorf("NewHistogram(%v): want error", ws)
		}
	}
}

func TestDistExecDeterministicAndOrderIndependent(t *testing.T) {
	d, _ := NewBeta(2, 5)
	m := DistExec{D: d, Seed: 42}
	// Same key, same draw — regardless of everything drawn in between.
	a := m.Cycles(3, 7, 10)
	for i := 0; i < 100; i++ {
		_ = m.Cycles(i, i*3, 5)
	}
	if b := m.Cycles(3, 7, 10); b != a {
		t.Fatalf("draw depends on call order: %v then %v", a, b)
	}
	// Different seeds decorrelate.
	m2 := DistExec{D: d, Seed: 43}
	if m2.Cycles(3, 7, 10) == a {
		t.Fatalf("seed 42 and 43 gave the identical draw")
	}
	// Support: (0, wcet] for a spread of keys.
	for ti := 0; ti < 8; ti++ {
		for inv := 0; inv < 64; inv++ {
			c := m.Cycles(ti, inv, 10)
			if !(c > 0) || c > 10 {
				t.Fatalf("Cycles(%d,%d) = %v outside (0, 10]", ti, inv, c)
			}
		}
	}
}

func TestDistExecMatchesDistributionStatistics(t *testing.T) {
	// The empirical mean over many keyed draws approaches the
	// distribution mean (inverse-CDF sampling is unbiased).
	d, _ := NewBeta(2, 2)
	m := DistExec{D: d, Seed: 7}
	var sum float64
	const n = 4000
	for inv := 0; inv < n; inv++ {
		sum += m.Cycles(0, inv, 1)
	}
	if got, want := sum/n, d.Mean(); math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical mean %v, distribution mean %v", got, want)
	}
}

func TestParseExecDistributions(t *testing.T) {
	for _, spec := range []string{"beta=2,5", "bimodal=0.2,0.9,0.1", "hist=1,2,3"} {
		m, err := ParseExec(spec, 11)
		if err != nil {
			t.Fatalf("ParseExec(%q): %v", spec, err)
		}
		if got := m.String(); got != spec {
			t.Errorf("ParseExec(%q).String() = %q", spec, got)
		}
		if _, ok := m.(Distributions); !ok {
			t.Errorf("ParseExec(%q) does not expose Distributions", spec)
		}
		if c := m.Cycles(0, 0, 10); !(c > 0) || c > 10 {
			t.Errorf("ParseExec(%q).Cycles = %v outside (0, 10]", spec, c)
		}
	}
	for _, spec := range []string{
		"beta=", "beta=1", "beta=0,1", "beta=1,2,3", "beta=x,y",
		"bimodal=0.2,0.9", "bimodal=2,3,4", "hist=", "hist=0,0", "hist=a",
	} {
		if _, err := ParseExec(spec, 0); err == nil {
			t.Errorf("ParseExec(%q): want error", spec)
		}
	}
}

func TestPartialMeanFrac(t *testing.T) {
	// For uniform (Beta(1,1)): E[min(X, b)] = b − b²/2.
	d, _ := NewBeta(1, 1)
	for _, b := range []float64{0.25, 0.5, 0.75, 1} {
		want := b - b*b/2
		if got := partialMeanFrac(d, b); math.Abs(got-want) > 1e-3 {
			t.Errorf("partialMeanFrac(U, %v) = %v, want %v", b, got, want)
		}
	}
	if got := partialMeanFrac(d, 0); got != 0 {
		t.Errorf("partialMeanFrac(U, 0) = %v", got)
	}
}

func TestOptimalBudgetPrefersQuantileReservation(t *testing.T) {
	// A strongly low-skewed demand on a multi-point machine: reserving
	// near the common case must beat the worst-case reservation.
	m := machine.Machine1()
	d, _ := NewBeta(2, 8) // mean 0.2, p99 well under 0.7
	plan := OptimalBudget(d, 10, 40, 0.3, m)
	full := OptimalBudget(nil, 10, 40, 0.3, m)
	if plan.Budget >= full.Budget {
		t.Fatalf("skewed demand kept the full reservation: %+v", plan)
	}
	if !(plan.Budget > 0) || plan.Budget > 10 {
		t.Fatalf("budget %v outside (0, wcet]", plan.Budget)
	}
	if plan.Energy <= 0 {
		t.Fatalf("plan energy %v not positive", plan.Energy)
	}
}

func TestOptimalBudgetFallsBackToWorstCase(t *testing.T) {
	m := machine.Machine1()
	// Demand pinned at the worst case: no budget below WCET helps.
	d, _ := NewBeta(50, 1) // mass near 1
	plan := OptimalBudget(d, 10, 40, 0.0, m)
	if plan.Budget != 10 {
		t.Fatalf("near-WCET demand should reserve the worst case, got %+v", plan)
	}
	// Nil distribution and degenerate inputs: full reservation.
	for _, plan := range []BudgetPlan{
		OptimalBudget(nil, 10, 40, 0, m),
		OptimalBudget(d, 0, 40, 0, m),
		OptimalBudget(d, 10, 0, 0, m),
		OptimalBudget(d, 10, 40, -1, m),
		OptimalBudget(d, 10, 40, 0, nil),
	} {
		if plan.Budget != 10 && plan.Budget != 0 {
			t.Fatalf("degenerate input gave partial budget %+v", plan)
		}
	}
}

func TestOptimalBudgetRespectsRestUtilization(t *testing.T) {
	// With the rest of the set loading the processor heavily, low grid
	// points are out of reach and the budget can only sit higher (or at
	// the worst case).
	m := machine.Machine1()
	d, _ := NewBeta(2, 8)
	light := OptimalBudget(d, 10, 40, 0.0, m)
	heavy := OptimalBudget(d, 10, 40, 0.7, m)
	if heavy.Freq < light.Freq {
		t.Fatalf("heavier rest utilization selected a lower frequency: light=%+v heavy=%+v", light, heavy)
	}
}

func TestDistStrings(t *testing.T) {
	d1, _ := NewBeta(2, 5)
	d2, _ := NewBimodal(0.2, 0.9, 0.1, 0.05)
	d3, _ := NewHistogram([]float64{1, 2})
	for _, c := range []struct {
		d    Dist
		want string
	}{
		{d1, "beta=2,5"}, {d2, "bimodal=0.2,0.9,0.1"}, {d3, "hist=1,2"},
	} {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// FuzzDistributionSampler asserts the keyed sampler's hard contract: for
// any seed, key and accepted distribution parameters, a sampled demand
// is finite, strictly positive and never exceeds the worst case.
func FuzzDistributionSampler(f *testing.F) {
	f.Add(int64(1), uint8(0), 2.0, 5.0, 0.1, 3, 7, 10.0)
	f.Add(int64(-9), uint8(1), 0.2, 0.9, 0.5, 0, 0, 1.0)
	f.Add(int64(1<<40), uint8(2), 1.0, 2.0, 3.0, 100, 100000, 0.001)
	f.Add(int64(0), uint8(0), 0.5, 0.5, 0.0, -1, -1, 5.0)
	f.Fuzz(func(t *testing.T, seed int64, kind uint8, a, b, c float64, ti, inv int, wcet float64) {
		if !(wcet > 0) || math.IsInf(wcet, 0) || wcet > 1e12 {
			t.Skip()
		}
		var d Dist
		var err error
		switch kind % 3 {
		case 0:
			d, err = NewBeta(a, b)
		case 1:
			d, err = NewBimodal(a, b, clamp01(c), 0.05)
		case 2:
			d, err = NewHistogram([]float64{abs1e6(a), abs1e6(b), abs1e6(c)})
		}
		if err != nil {
			t.Skip() // constructor rejected the params: nothing to sample
		}
		m := DistExec{D: d, Seed: seed}
		got := m.Cycles(ti, inv, wcet)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%s: Cycles(%d,%d,%v) = %v", d, ti, inv, wcet, got)
		}
		if !(got > 0) || got > wcet {
			t.Fatalf("%s: Cycles(%d,%d,%v) = %v outside (0, wcet]", d, ti, inv, wcet, got)
		}
	})
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func abs1e6(v float64) float64 {
	v = math.Abs(v)
	if math.IsNaN(v) || v > 1e6 {
		return 1
	}
	return v
}

func TestDistSpecRoundTripThroughParse(t *testing.T) {
	// Every distribution's String() is re-parseable to an equal model.
	for _, spec := range []string{"beta=2,5", "bimodal=0.25,0.75,0.2", "hist=1,0,2"} {
		m1, err := ParseExec(spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := ParseExec(m1.String(), 5)
		if err != nil {
			t.Fatalf("re-parse %q: %v", m1.String(), err)
		}
		for inv := 0; inv < 16; inv++ {
			if a, b := m1.Cycles(1, inv, 7), m2.Cycles(1, inv, 7); a != b {
				t.Fatalf("%q: round-trip draw differs at inv %d: %v vs %v", spec, inv, a, b)
			}
		}
		if !strings.Contains(m1.String(), "=") {
			t.Fatalf("spec %q lost parse syntax", m1.String())
		}
	}
}
