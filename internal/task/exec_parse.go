package task

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// ParseExec parses the textual execution-model spec shared by the CLI
// tools and the HTTP API: "wcet" (or empty) for full worst case,
// "c=<frac>" for a constant fraction in (0, 1], "uniform" for
// per-invocation draws from (0, WCET], and the distribution-backed
// models "beta=<a>,<b>", "bimodal=<lo>,<hi>,<hiProb>" and
// "hist=<w1>,<w2>,...". The uniform model is seeded deterministically
// from seed; the distribution models key every draw by
// (seed, task, invocation), so equal specs replay identically and are
// independent of call order.
func ParseExec(spec string, seed int64) (ExecModel, error) {
	switch {
	case spec == "wcet" || spec == "":
		return FullWCET{}, nil
	case spec == "uniform":
		return UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(seed + 1))}, nil
	case strings.HasPrefix(spec, "c="):
		c, err := strconv.ParseFloat(spec[2:], 64)
		if err != nil || !(c > 0) || c > 1 {
			return nil, fmt.Errorf("task: bad execution fraction %q (want c=<frac> with frac in (0,1])", spec)
		}
		return ConstantFraction{C: c}, nil
	case strings.HasPrefix(spec, "beta="):
		fs, err := parseFloats(spec[len("beta="):], 2)
		if err != nil {
			return nil, fmt.Errorf("task: bad beta spec %q (want beta=<a>,<b>): %v", spec, err)
		}
		d, err := NewBeta(fs[0], fs[1])
		if err != nil {
			return nil, err
		}
		return DistExec{D: d, Seed: seed}, nil
	case strings.HasPrefix(spec, "bimodal="):
		fs, err := parseFloats(spec[len("bimodal="):], 3)
		if err != nil {
			return nil, fmt.Errorf("task: bad bimodal spec %q (want bimodal=<lo>,<hi>,<hiProb>): %v", spec, err)
		}
		d, err := NewBimodal(fs[0], fs[1], fs[2], defaultBimodalWidth)
		if err != nil {
			return nil, err
		}
		return DistExec{D: d, Seed: seed}, nil
	case strings.HasPrefix(spec, "hist="):
		fs, err := parseFloats(spec[len("hist="):], 0)
		if err != nil {
			return nil, fmt.Errorf("task: bad histogram spec %q (want hist=<w1>,<w2>,...): %v", spec, err)
		}
		d, err := NewHistogram(fs)
		if err != nil {
			return nil, err
		}
		return DistExec{D: d, Seed: seed}, nil
	}
	return nil, fmt.Errorf("task: unknown execution model %q (want \"wcet\", \"c=<frac>\", \"uniform\", \"beta=<a>,<b>\", \"bimodal=<lo>,<hi>,<p>\", or \"hist=<w1>,...\")", spec)
}

// defaultBimodalWidth is the half-width of each bimodal mode when parsed
// from the 3-argument textual spec.
const defaultBimodalWidth = 0.05

// parseFloats splits a comma-separated float list; want > 0 pins the
// arity, want == 0 accepts any non-empty list.
func parseFloats(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if want > 0 && len(parts) != want {
		return nil, fmt.Errorf("want %d comma-separated values, got %d", want, len(parts))
	}
	if len(parts) == 0 || (len(parts) == 1 && strings.TrimSpace(parts[0]) == "") {
		return nil, fmt.Errorf("empty value list")
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}
