package task

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// ParseExec parses the textual execution-model spec shared by the CLI
// tools and the HTTP API: "wcet" (or empty) for full worst case,
// "c=<frac>" for a constant fraction in (0, 1], and "uniform" for
// per-invocation draws from (0, WCET]. The uniform model is seeded
// deterministically from seed, so equal specs replay identically.
func ParseExec(spec string, seed int64) (ExecModel, error) {
	switch {
	case spec == "wcet" || spec == "":
		return FullWCET{}, nil
	case spec == "uniform":
		return UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(seed + 1))}, nil
	case strings.HasPrefix(spec, "c="):
		c, err := strconv.ParseFloat(spec[2:], 64)
		if err != nil || !(c > 0) || c > 1 {
			return nil, fmt.Errorf("task: bad execution fraction %q (want c=<frac> with frac in (0,1])", spec)
		}
		return ConstantFraction{C: c}, nil
	}
	return nil, fmt.Errorf("task: unknown execution model %q (want \"wcet\", \"c=<frac>\", or \"uniform\")", spec)
}
