package task

import (
	"fmt"
	"math/rand"

	"rtdvs/internal/fpx"
)

// ExecModel decides how many cycles (milliseconds at maximum frequency)
// invocation inv of a task actually consumes, given its worst-case bound.
// The simulator guarantees the result is clamped to (0, wcet].
//
// The paper's evaluation uses FullWCET (Figures 9–11), ConstantFraction
// (Figures 12, 16, 17: c = 0.9, 0.7, 0.5) and UniformFraction (Figure 13).
type ExecModel interface {
	// Cycles returns the actual computation demand of invocation inv
	// (0-based) of the task with index ti and worst case wcet.
	Cycles(ti, inv int, wcet float64) float64
	// String describes the model ("c=0.9", "uniform", "wcet").
	String() string
}

// FullWCET makes every invocation consume its full worst-case bound.
type FullWCET struct{}

// Cycles implements ExecModel.
func (FullWCET) Cycles(_, _ int, wcet float64) float64 { return wcet }

func (FullWCET) String() string { return "wcet" }

// ConstantFraction makes every invocation consume a fixed fraction C of
// its worst case (e.g. 0.9 means 90% of the specified bound).
type ConstantFraction struct {
	C float64
}

// Cycles implements ExecModel.
func (m ConstantFraction) Cycles(_, _ int, wcet float64) float64 { return m.C * wcet }

func (m ConstantFraction) String() string { return fmt.Sprintf("c=%g", m.C) }

// UniformFraction draws each invocation's demand uniformly from
// (Lo, Hi] × WCET. The paper's Figure 13 uses Lo=0, Hi=1.
type UniformFraction struct {
	Lo, Hi float64
	Rand   *rand.Rand
}

// Cycles implements ExecModel.
func (m UniformFraction) Cycles(_, _ int, wcet float64) float64 {
	f := m.Lo + m.Rand.Float64()*(m.Hi-m.Lo)
	if f <= 0 {
		// Zero-length invocations degenerate the model (a task that does
		// nothing); keep a sliver of work so completion events still fire
		// in order.
		f = 1e-9
	}
	return f * wcet
}

func (m UniformFraction) String() string {
	if fpx.Zero(m.Lo) && fpx.Eq(m.Hi, 1) {
		return "uniform"
	}
	return fmt.Sprintf("uniform[%g,%g]", m.Lo, m.Hi)
}

// PerInvocation replays an explicit table of actual computation times:
// cycles[ti][inv] gives the demand of invocation inv of task ti, and
// invocations beyond the table's end repeat the last column. It is used to
// reproduce the paper's worked example (Table 3) exactly.
type PerInvocation struct {
	Table [][]float64
	// Fallback supplies demands for task indices outside the table (for
	// dynamically added tasks); nil means FullWCET.
	Fallback ExecModel
}

// Cycles implements ExecModel.
func (m PerInvocation) Cycles(ti, inv int, wcet float64) float64 {
	if ti < 0 || ti >= len(m.Table) || len(m.Table[ti]) == 0 {
		if m.Fallback != nil {
			return m.Fallback.Cycles(ti, inv, wcet)
		}
		return wcet
	}
	row := m.Table[ti]
	if inv >= len(row) {
		inv = len(row) - 1
	}
	c := row[inv]
	if c > wcet {
		c = wcet
	}
	return c
}

func (PerInvocation) String() string { return "per-invocation" }

// PaperExampleExec is the actual-computation table of Table 3 for the
// worked example: T1 uses 2 then 1 ms, T2 and T3 use 1 ms per invocation.
func PaperExampleExec() PerInvocation {
	return PerInvocation{Table: [][]float64{
		{2, 1},
		{1, 1},
		{1, 1},
	}}
}
