package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullWCET(t *testing.T) {
	m := FullWCET{}
	if got := m.Cycles(0, 0, 7.5); got != 7.5 {
		t.Errorf("Cycles = %v, want 7.5", got)
	}
	if m.String() != "wcet" {
		t.Errorf("String = %q", m.String())
	}
}

func TestConstantFraction(t *testing.T) {
	m := ConstantFraction{C: 0.9}
	if got := m.Cycles(3, 12, 10); got != 9 {
		t.Errorf("Cycles = %v, want 9", got)
	}
	if m.String() != "c=0.9" {
		t.Errorf("String = %q", m.String())
	}
}

func TestUniformFractionBounds(t *testing.T) {
	m := UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(3))}
	for i := 0; i < 1000; i++ {
		c := m.Cycles(0, i, 10)
		if c <= 0 || c > 10 {
			t.Fatalf("draw %d: %v outside (0, 10]", i, c)
		}
	}
	if m.String() != "uniform" {
		t.Errorf("String = %q", m.String())
	}
	sub := UniformFraction{Lo: 0.2, Hi: 0.4, Rand: rand.New(rand.NewSource(3))}
	if sub.String() != "uniform[0.2,0.4]" {
		t.Errorf("String = %q", sub.String())
	}
	for i := 0; i < 1000; i++ {
		c := sub.Cycles(0, i, 10)
		if c < 2 || c > 4 {
			t.Fatalf("draw %d: %v outside [2, 4]", i, c)
		}
	}
}

// The uniform model's mean must approach (Lo+Hi)/2 × WCET.
func TestUniformFractionMean(t *testing.T) {
	m := UniformFraction{Lo: 0, Hi: 1, Rand: rand.New(rand.NewSource(4))}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.Cycles(0, i, 1)
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestPerInvocationTable(t *testing.T) {
	m := PaperExampleExec()
	cases := []struct {
		ti, inv int
		want    float64
	}{
		{0, 0, 2}, {0, 1, 1}, {0, 5, 1}, // T1: 2 then 1, repeating the last
		{1, 0, 1}, {1, 1, 1},
		{2, 0, 1}, {2, 9, 1},
	}
	for _, c := range cases {
		if got := m.Cycles(c.ti, c.inv, 3); got != c.want {
			t.Errorf("Cycles(%d,%d) = %v, want %v", c.ti, c.inv, got, c.want)
		}
	}
}

func TestPerInvocationClampsToWCET(t *testing.T) {
	m := PerInvocation{Table: [][]float64{{5}}}
	if got := m.Cycles(0, 0, 3); got != 3 {
		t.Errorf("Cycles = %v, want clamped 3", got)
	}
}

func TestPerInvocationFallback(t *testing.T) {
	m := PerInvocation{Table: [][]float64{{1}}, Fallback: ConstantFraction{C: 0.5}}
	if got := m.Cycles(5, 0, 10); got != 5 {
		t.Errorf("fallback Cycles = %v, want 5", got)
	}
	noFB := PerInvocation{Table: [][]float64{{1}}}
	if got := noFB.Cycles(5, 0, 10); got != 10 {
		t.Errorf("default fallback Cycles = %v, want WCET", got)
	}
}

// Every model must stay within (0, wcet] for positive worst cases (after
// the simulator's clamp, which PerInvocation applies itself).
func TestModelsRespectBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	models := []ExecModel{
		FullWCET{},
		ConstantFraction{C: 0.7},
		UniformFraction{Lo: 0, Hi: 1, Rand: r},
		PaperExampleExec(),
	}
	f := func(ti, inv uint8, rawW float64) bool {
		w := 0.001 + float64(int(rawW*1000)%10000)/100
		if w <= 0 {
			w = 1
		}
		for _, m := range models {
			c := m.Cycles(int(ti%3), int(inv), w)
			if c <= 0 || c > w+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPerInvocationString(t *testing.T) {
	if got := (PerInvocation{}).String(); got != "per-invocation" {
		t.Errorf("String = %q", got)
	}
}
