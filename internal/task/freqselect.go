package task

import (
	"math"

	"rtdvs/internal/machine"
)

// Expected-energy-optimal discrete frequency selection for frame-based
// stochastic workloads, after Berten et al.: a frame task whose demand
// follows a known distribution need not reserve its full worst case at
// release. Reserving a budget b < WCET lets the processor run at the
// lower grid frequency that budget implies; only when the job actually
// exceeds b does the reservation escalate to the worst case (and the
// frequency to the escalation point). The optimal b minimizes
//
//	E[energy] = E[min(C, b)]·e(f_run(b)) + (E[C] − E[min(C, b)])·e(f_esc)
//
// over the *discrete* budgets the frequency grid distinguishes, where
// e(f) is the platform's energy per cycle at the grid point f and f_esc
// is the point a worst-case reservation needs. Because the frequency
// grid is discrete, only budgets that sit exactly at a grid boundary are
// ever optimal — any budget strictly inside a grid step reserves cycles
// the frequency cannot get cheaper for — so the search space is the grid
// itself plus the worst case.

// BudgetPlan is one evaluated reservation choice for a frame task.
type BudgetPlan struct {
	// Budget is the cycles (ms at full speed) to reserve at release;
	// always in (0, WCET].
	Budget float64
	// Freq is the grid frequency the reservation implies while the job
	// stays within budget.
	Freq float64
	// Energy is the expected energy per invocation (cycle·V² units) the
	// plan was scored with.
	Energy float64
}

// meanGridSteps is the trapezoid resolution for E[min(C, b)]; selection
// is a cold-path computation (once per Attach), so accuracy wins.
const meanGridSteps = 256

// partialMeanFrac returns E[min(X, β)] for a fraction distribution d,
// via E[min(X, β)] = ∫₀^β (1 − CDF(x)) dx (trapezoid rule).
func partialMeanFrac(d Dist, beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	if beta > 1 {
		beta = 1
	}
	h := beta / meanGridSteps
	sum := 0.5 * ((1 - d.CDF(0)) + (1 - d.CDF(beta)))
	for i := 1; i < meanGridSteps; i++ {
		sum += 1 - d.CDF(float64(i)*h)
	}
	return sum * h
}

// OptimalBudget selects the expected-energy-optimal reservation budget
// for a frame-based task with demand distribution d, worst case wcet
// (cycles) and frame length period (ms), sharing the processor with
// other work reserving uRest utilization. A nil distribution (or a
// degenerate machine) falls back to the full worst-case reservation —
// the paper's deterministic policies.
func OptimalBudget(d Dist, wcet, period, uRest float64, m *machine.Spec) BudgetPlan {
	esc := opAtLeast(m, uRest+wcet/period)
	full := BudgetPlan{Budget: wcet, Freq: esc.Freq, Energy: 0}
	if d == nil || m == nil || !(wcet > 0) || !(period > 0) || uRest < 0 {
		return full
	}
	mean := d.Mean() * wcet
	full.Energy = mean * esc.EnergyPerCycle()

	best := full
	for _, op := range m.Points {
		// The largest budget this grid point can serve: run-frequency
		// op.Freq covers reservations up to (op.Freq − uRest)·period.
		b := (op.Freq - uRest) * period
		if !(b > 0) {
			continue
		}
		if b >= wcet {
			// Indistinguishable from the full worst-case reservation.
			continue
		}
		within := partialMeanFrac(d, b/wcet) * wcet
		tail := mean - within
		if tail < 0 {
			tail = 0
		}
		e := within*op.EnergyPerCycle() + tail*esc.EnergyPerCycle()
		// Strict improvement only: ties keep the larger budget (fewer
		// escalations, fewer switches) already held by best.
		if e < best.Energy {
			best = BudgetPlan{Budget: b, Freq: op.Freq, Energy: e}
		}
	}
	return best
}

// opAtLeast is spec.LowestAtLeast saturating at the maximum point (and
// at full speed for a nil spec).
func opAtLeast(m *machine.Spec, f float64) machine.OperatingPoint {
	if m == nil || len(m.Points) == 0 {
		return machine.OperatingPoint{Freq: 1, Voltage: 1}
	}
	if math.IsNaN(f) {
		return m.Max()
	}
	op, err := m.LowestAtLeast(f)
	if err != nil {
		return m.Max()
	}
	return op
}
