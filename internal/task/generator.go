package task

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces random task sets by the method of Section 3.1
// (previously used in the EMERALDS microkernel evaluation): each task has
// equal probability of a short (1–10 ms), medium (10–100 ms), or long
// (100–1000 ms) period, uniformly distributed within the range; raw
// computation times are drawn the same way (clamped to the period) and then
// the whole set is scaled by a constant so the total worst-case utilization
// hits the requested target.
type Generator struct {
	// N is the number of tasks per set.
	N int
	// Utilization is the target worst-case utilization ΣCi/Pi.
	Utilization float64
	// Ranges optionally overrides the three period ranges; when nil the
	// paper's 1–10/10–100/100–1000 ms mix is used.
	Ranges []Range
	// Rand is the randomness source. It must be non-nil.
	Rand *rand.Rand
}

// Range is a half-open interval [Lo, Hi) of milliseconds.
type Range struct {
	Lo, Hi float64
}

// DefaultRanges is the paper's short/medium/long period mix.
func DefaultRanges() []Range {
	return []Range{{1, 10}, {10, 100}, {100, 1000}}
}

// Generate draws one task set. It returns an error for nonsensical
// parameters (the target utilization must be in (0, n] since no task may
// exceed utilization 1; in practice targets are in (0, 1]).
func (g *Generator) Generate() (*Set, error) {
	if g.N <= 0 {
		return nil, fmt.Errorf("task: generator needs N > 0, got %d", g.N)
	}
	if !(g.Utilization > 0) || g.Utilization > float64(g.N) {
		return nil, fmt.Errorf("task: target utilization %v outside (0, %d]", g.Utilization, g.N)
	}
	if g.Rand == nil {
		return nil, fmt.Errorf("task: generator needs a rand source")
	}
	ranges := g.Ranges
	if ranges == nil {
		ranges = DefaultRanges()
	}

	// Rejection-sample until the scaled set is valid: scaling to high
	// target utilizations can push an individual task's computation past
	// its period, which the model forbids.
	for attempt := 0; attempt < 1000; attempt++ {
		tasks := make([]Task, g.N)
		var raw float64
		for i := range tasks {
			p := uniform(g.Rand, ranges[g.Rand.Intn(len(ranges))])
			c := uniform(g.Rand, ranges[g.Rand.Intn(len(ranges))])
			if c > p {
				c = p
			}
			tasks[i] = Task{Period: p, WCET: c}
			raw += c / p
		}
		scale := g.Utilization / raw
		ok := true
		for i := range tasks {
			tasks[i].WCET *= scale
			if tasks[i].WCET > tasks[i].Period || tasks[i].WCET <= 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s, err := NewSet(tasks...)
		if err != nil {
			continue
		}
		// Guard against floating-point drift on the target.
		if math.Abs(s.Utilization()-g.Utilization) > 1e-6 {
			continue
		}
		return s, nil
	}
	return nil, fmt.Errorf("task: could not generate a valid set for N=%d U=%v", g.N, g.Utilization)
}

func uniform(r *rand.Rand, rg Range) float64 {
	return rg.Lo + r.Float64()*(rg.Hi-rg.Lo)
}
