package task

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratorHitsTargetUtilization(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, u := range []float64{0.1, 0.5, 0.9, 1.0} {
		g := Generator{N: 8, Utilization: u, Rand: r}
		s, err := g.Generate()
		if err != nil {
			t.Fatalf("u=%v: %v", u, err)
		}
		if math.Abs(s.Utilization()-u) > 1e-6 {
			t.Errorf("u=%v: got %v", u, s.Utilization())
		}
		if s.Len() != 8 {
			t.Errorf("u=%v: %d tasks", u, s.Len())
		}
	}
}

func TestGeneratorPeriodRanges(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := Generator{N: 200, Utilization: 0.5, Rand: r}
	s, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var short, medium, long int
	for _, tk := range s.Tasks() {
		switch {
		case tk.Period >= 1 && tk.Period < 10:
			short++
		case tk.Period >= 10 && tk.Period < 100:
			medium++
		case tk.Period >= 100 && tk.Period < 1000:
			long++
		default:
			t.Errorf("period %v outside the 1–1000 ms ranges", tk.Period)
		}
	}
	// Equal probability per range: with 200 draws each bucket should be
	// populated substantially.
	for name, n := range map[string]int{"short": short, "medium": medium, "long": long} {
		if n < 30 {
			t.Errorf("%s periods: %d of 200, expected roughly a third", name, n)
		}
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	g1 := Generator{N: 5, Utilization: 0.6, Rand: rand.New(rand.NewSource(7))}
	g2 := Generator{N: 5, Utilization: 0.6, Rand: rand.New(rand.NewSource(7))}
	s1, err1 := g1.Generate()
	s2, err2 := g2.Generate()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := 0; i < s1.Len(); i++ {
		if s1.Task(i) != s2.Task(i) {
			t.Fatalf("same seed, different sets: %v vs %v", s1, s2)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := []Generator{
		{N: 0, Utilization: 0.5, Rand: r},
		{N: -1, Utilization: 0.5, Rand: r},
		{N: 5, Utilization: 0, Rand: r},
		{N: 5, Utilization: -0.5, Rand: r},
		{N: 5, Utilization: 6, Rand: r}, // above N
		{N: 5, Utilization: 0.5, Rand: nil},
	}
	for i, g := range cases {
		if _, err := g.Generate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, g)
		}
	}
}

// Every generated set must be valid: positive WCETs no larger than the
// periods, and total utilization on target.
func TestGeneratorProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawU float64) bool {
		n := int(rawN%12) + 1
		u := math.Mod(math.Abs(rawU), 0.99) + 0.01
		g := Generator{N: n, Utilization: u, Rand: rand.New(rand.NewSource(seed))}
		s, err := g.Generate()
		if err != nil {
			return false
		}
		for _, tk := range s.Tasks() {
			if tk.WCET <= 0 || tk.WCET > tk.Period {
				return false
			}
		}
		return math.Abs(s.Utilization()-u) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
