// Package task implements the classic periodic real-time task model used
// throughout the paper (Liu & Layland): each task Ti has a period Pi and a
// worst-case computation time Ci specified at the maximum processor
// frequency, is released once per period, and must complete by the end of
// its period (deadline = next release).
//
// It also provides the paper's random task-set generator (Section 3.1) and
// the actual-computation models used in the evaluation (constant fraction
// of WCET, and uniformly distributed fractions).
package task

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Task is one periodic real-time task. Times are in milliseconds; WCET is
// expressed in milliseconds of execution at maximum frequency.
type Task struct {
	// Name is an optional human-readable label ("T1").
	Name string `json:"name,omitempty"`
	// Period is the release interval Pi (also the relative deadline).
	Period float64 `json:"period"`
	// WCET is the worst-case computation time Ci at maximum frequency.
	WCET float64 `json:"wcet"`
	// Phase delays the first release to this absolute time (default 0,
	// the synchronous critical instant the paper's evaluation uses).
	// Non-zero phases exercise the offset release patterns that arise
	// from dynamic task admission.
	Phase float64 `json:"phase,omitempty"`
}

// Utilization returns Ci/Pi, the worst-case fraction of full-speed
// processor time the task can demand.
func (t Task) Utilization() float64 { return t.WCET / t.Period }

// Validate checks that the task parameters are usable.
func (t Task) Validate() error {
	switch {
	case !(t.Period > 0) || math.IsInf(t.Period, 0):
		return fmt.Errorf("task %q: period must be positive and finite, got %v", t.Name, t.Period)
	case !(t.WCET > 0) || math.IsInf(t.WCET, 0):
		return fmt.Errorf("task %q: WCET must be positive and finite, got %v", t.Name, t.WCET)
	case t.WCET > t.Period:
		return fmt.Errorf("task %q: WCET %v exceeds period %v", t.Name, t.WCET, t.Period)
	case t.Phase < 0 || math.IsInf(t.Phase, 0) || math.IsNaN(t.Phase):
		return fmt.Errorf("task %q: phase must be non-negative and finite, got %v", t.Name, t.Phase)
	}
	return nil
}

// String formats the task as "T1(C=3, P=8)".
func (t Task) String() string {
	name := t.Name
	if name == "" {
		name = "task"
	}
	return fmt.Sprintf("%s(C=%g, P=%g)", name, t.WCET, t.Period)
}

// Set is an immutable collection of periodic tasks. The zero value is an
// empty set. Task order is preserved; schedulers impose their own priority
// ordering.
type Set struct {
	tasks []Task
}

// ErrEmptySet is returned when an operation requires at least one task.
var ErrEmptySet = errors.New("task: empty task set")

// NewSet builds a set from the given tasks, assigning names T1..Tn to any
// unnamed task, and validates every member.
func NewSet(tasks ...Task) (*Set, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptySet
	}
	owned := make([]Task, len(tasks))
	copy(owned, tasks)
	for i := range owned {
		if owned[i].Name == "" {
			owned[i].Name = fmt.Sprintf("T%d", i+1)
		}
		if err := owned[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &Set{tasks: owned}, nil
}

// MustSet is NewSet that panics on error; intended for tests and examples
// with literal task sets.
func MustSet(tasks ...Task) *Set {
	s, err := NewSet(tasks...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of tasks.
func (s *Set) Len() int { return len(s.tasks) }

// Task returns the i-th task.
func (s *Set) Task(i int) Task { return s.tasks[i] }

// Tasks returns a copy of the task slice.
func (s *Set) Tasks() []Task {
	return append([]Task(nil), s.tasks...)
}

// Utilization returns the total worst-case utilization ΣCi/Pi.
func (s *Set) Utilization() float64 {
	var u float64
	for _, t := range s.tasks {
		u += t.Utilization()
	}
	return u
}

// MaxPeriod returns the longest period in the set.
func (s *Set) MaxPeriod() float64 {
	var m float64
	for _, t := range s.tasks {
		m = math.Max(m, t.Period)
	}
	return m
}

// MinPeriod returns the shortest period in the set.
func (s *Set) MinPeriod() float64 {
	m := math.Inf(1)
	for _, t := range s.tasks {
		m = math.Min(m, t.Period)
	}
	return m
}

// Hyperperiod returns the least common multiple of the periods when every
// period is (close to) an integral number of milliseconds, and ok=true.
// For non-integral or overflowing period sets it returns 0, false; callers
// fall back to a fixed simulation horizon.
func (s *Set) Hyperperiod() (float64, bool) {
	const limit = 1 << 40
	lcm := int64(1)
	for _, t := range s.tasks {
		p := math.Round(t.Period)
		if math.Abs(p-t.Period) > 1e-9 || p < 1 {
			return 0, false
		}
		g := gcd(lcm, int64(p))
		l := lcm / g
		if l > limit/int64(p) {
			return 0, false
		}
		lcm = l * int64(p)
	}
	return float64(lcm), true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ByPeriod returns the task indices sorted by ascending period (RM
// priority order), breaking ties by original position.
func (s *Set) ByPeriod() []int {
	idx := make([]int, len(s.tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.tasks[idx[a]].Period < s.tasks[idx[b]].Period
	})
	return idx
}

// WithTask returns a new set with an extra task appended (used by the
// RTOS layer's dynamic admission).
func (s *Set) WithTask(t Task) (*Set, error) {
	return NewSet(append(s.Tasks(), t)...)
}

// WithoutTask returns a new set with task i removed.
func (s *Set) WithoutTask(i int) (*Set, error) {
	if i < 0 || i >= len(s.tasks) {
		return nil, fmt.Errorf("task: index %d out of range [0,%d)", i, len(s.tasks))
	}
	rest := make([]Task, 0, len(s.tasks)-1)
	rest = append(rest, s.tasks[:i]...)
	rest = append(rest, s.tasks[i+1:]...)
	return NewSet(rest...)
}

// String renders the set as "{T1(C=3, P=8) T2(C=3, P=10)} U=0.68".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.tasks {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.String())
	}
	fmt.Fprintf(&b, "} U=%.3f", s.Utilization())
	return b.String()
}

// PaperExample returns the 3-task example of Table 2: computing times
// 3/3/1 ms, periods 8/10/14 ms (U ≈ 0.746).
func PaperExample() *Set {
	return MustSet(
		Task{Name: "T1", Period: 8, WCET: 3},
		Task{Name: "T2", Period: 10, WCET: 3},
		Task{Name: "T3", Period: 14, WCET: 1},
	)
}
