package task

import (
	"math"
	"strings"
	"testing"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid", Task{Period: 10, WCET: 3}, true},
		{"wcet equals period", Task{Period: 10, WCET: 10}, true},
		{"zero period", Task{Period: 0, WCET: 1}, false},
		{"negative period", Task{Period: -5, WCET: 1}, false},
		{"zero wcet", Task{Period: 10, WCET: 0}, false},
		{"negative wcet", Task{Period: 10, WCET: -1}, false},
		{"wcet over period", Task{Period: 10, WCET: 11}, false},
		{"inf period", Task{Period: math.Inf(1), WCET: 1}, false},
		{"nan wcet", Task{Period: 10, WCET: math.NaN()}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.task.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestTaskUtilization(t *testing.T) {
	if got := (Task{Period: 8, WCET: 3}).Utilization(); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.375", got)
	}
}

func TestNewSetNamesAndValidates(t *testing.T) {
	s, err := NewSet(Task{Period: 10, WCET: 1}, Task{Name: "io", Period: 20, WCET: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Task(0).Name; got != "T1" {
		t.Errorf("auto name = %q, want T1", got)
	}
	if got := s.Task(1).Name; got != "io" {
		t.Errorf("explicit name = %q, want io", got)
	}
}

func TestNewSetErrors(t *testing.T) {
	if _, err := NewSet(); err != ErrEmptySet {
		t.Errorf("empty set error = %v, want ErrEmptySet", err)
	}
	if _, err := NewSet(Task{Period: 10, WCET: 20}); err == nil {
		t.Error("want error for WCET > period")
	}
}

func TestMustSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSet should panic on invalid input")
		}
	}()
	MustSet(Task{Period: -1, WCET: 1})
}

func TestSetUtilization(t *testing.T) {
	s := PaperExample()
	want := 3.0/8 + 3.0/10 + 1.0/14
	if got := s.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestSetPeriodsAndOrder(t *testing.T) {
	s := MustSet(
		Task{Period: 100, WCET: 1},
		Task{Period: 5, WCET: 1},
		Task{Period: 20, WCET: 1},
	)
	if got := s.MaxPeriod(); got != 100 {
		t.Errorf("MaxPeriod = %v", got)
	}
	if got := s.MinPeriod(); got != 5 {
		t.Errorf("MinPeriod = %v", got)
	}
	order := s.ByPeriod()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ByPeriod = %v, want %v", order, want)
		}
	}
}

func TestByPeriodStableTies(t *testing.T) {
	s := MustSet(
		Task{Period: 10, WCET: 1},
		Task{Period: 10, WCET: 2},
		Task{Period: 10, WCET: 3},
	)
	order := s.ByPeriod()
	for i, idx := range order {
		if idx != i {
			t.Fatalf("ByPeriod with ties = %v, want identity order", order)
		}
	}
}

func TestHyperperiod(t *testing.T) {
	s := PaperExample() // 8, 10, 14
	hp, ok := s.Hyperperiod()
	if !ok || hp != 280 {
		t.Errorf("Hyperperiod = %v, %v; want 280, true", hp, ok)
	}
	frac := MustSet(Task{Period: 2.5, WCET: 1})
	if _, ok := frac.Hyperperiod(); ok {
		t.Error("fractional periods should have no integral hyperperiod")
	}
	huge := MustSet(
		Task{Period: 999983, WCET: 1}, // large primes overflow the cap
		Task{Period: 999979, WCET: 1},
		Task{Period: 999961, WCET: 1},
	)
	if _, ok := huge.Hyperperiod(); ok {
		t.Error("overflowing LCM should report not-ok")
	}
}

func TestWithTaskAndWithoutTask(t *testing.T) {
	s := PaperExample()
	s2, err := s.WithTask(Task{Name: "T4", Period: 50, WCET: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 || s.Len() != 3 {
		t.Errorf("lengths: orig %d, new %d", s.Len(), s2.Len())
	}
	s3, err := s2.WithoutTask(0)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 3 || s3.Task(0).Name != "T2" {
		t.Errorf("WithoutTask(0): len %d first %q", s3.Len(), s3.Task(0).Name)
	}
	if _, err := s2.WithoutTask(9); err == nil {
		t.Error("want error for out-of-range removal")
	}
}

func TestTasksReturnsCopy(t *testing.T) {
	s := PaperExample()
	got := s.Tasks()
	got[0].WCET = 999
	if s.Task(0).WCET == 999 {
		t.Error("Tasks() aliases internal storage")
	}
}

func TestSetString(t *testing.T) {
	str := PaperExample().String()
	for _, want := range []string{"T1(C=3, P=8)", "U=0.746"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}

func TestPaperExampleMatchesTable2(t *testing.T) {
	s := PaperExample()
	want := []Task{
		{Name: "T1", Period: 8, WCET: 3},
		{Name: "T2", Period: 10, WCET: 3},
		{Name: "T3", Period: 14, WCET: 1},
	}
	if s.Len() != len(want) {
		t.Fatalf("len = %d", s.Len())
	}
	for i, w := range want {
		if s.Task(i) != w {
			t.Errorf("task %d = %+v, want %+v", i, s.Task(i), w)
		}
	}
}
