// Package trace captures execution traces — which task ran when, at which
// operating point — and renders them as ASCII Gantt charts in the style of
// the paper's Figures 2, 3, 5 and 7.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"rtdvs/internal/fpx"
	"rtdvs/internal/machine"
)

// Special task indices used in segments.
const (
	// Idle marks processor idle time.
	Idle = -1
	// SwitchHalt marks the mandatory stop interval of a voltage/frequency
	// transition.
	SwitchHalt = -2
)

// Segment is a maximal interval during which one task (or idle state) ran
// at one operating point.
type Segment struct {
	// Task is the task index, or Idle / SwitchHalt.
	Task int `json:"task"`
	// Start and End bound the interval in milliseconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Point is the operating point in effect.
	Point machine.OperatingPoint `json:"point"`
}

// Duration returns the segment length.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Recorder accumulates segments, merging adjacent segments that continue
// the same task at the same operating point.
type Recorder struct {
	segments []Segment
}

// Add appends a segment, merging with the previous one when contiguous.
// Zero-length segments are dropped.
func (r *Recorder) Add(seg Segment) {
	if fpx.LeTol(seg.Duration(), 0, fpx.Tiny) {
		return
	}
	if n := len(r.segments); n > 0 {
		last := &r.segments[n-1]
		if last.Task == seg.Task && last.Point == seg.Point && fpx.Eq(last.End, seg.Start) {
			last.End = seg.End
			return
		}
	}
	r.segments = append(r.segments, seg)
}

// Segments returns the recorded segments in time order.
func (r *Recorder) Segments() []Segment {
	return append([]Segment(nil), r.segments...)
}

// Reset discards all recorded segments.
func (r *Recorder) Reset() { r.segments = r.segments[:0] }

// BusyTime returns total non-idle, non-halt time recorded.
func (r *Recorder) BusyTime() float64 {
	var t float64
	for _, s := range r.segments {
		if s.Task >= 0 {
			t += s.Duration()
		}
	}
	return t
}

// RenderOptions controls Gantt rendering.
type RenderOptions struct {
	// Width is the number of character columns for the time axis
	// (default 72).
	Width int
	// TaskNames labels the rows; index i names task i.
	TaskNames []string
	// End clips the chart at this time; 0 means the last segment end.
	End float64
}

// Render draws the trace as an ASCII chart: one row per distinct operating
// frequency (highest first, like the paper's frequency axis), plus a time
// ruler. Each busy cell shows the first rune of the running task's name.
func Render(segments []Segment, opts RenderOptions) string {
	if len(segments) == 0 {
		return "(empty trace)\n"
	}
	width := opts.Width
	if width <= 0 {
		width = 72
	}
	end := opts.End
	if end <= 0 {
		end = segments[len(segments)-1].End
	}

	// Collect the distinct frequencies in use, highest first.
	freqSet := map[float64]bool{}
	for _, s := range segments {
		if s.Task != Idle || s.Point.Freq > 0 {
			freqSet[s.Point.Freq] = true
		}
	}
	freqs := make([]float64, 0, len(freqSet))
	for f := range freqSet {
		freqs = append(freqs, f)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))

	rows := make([][]rune, len(freqs))
	for i := range rows {
		rows[i] = []rune(strings.Repeat(" ", width))
	}
	col := func(t float64) int {
		c := int(t / end * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rowOf := func(f float64) int {
		for i, rf := range freqs {
			if fpx.Eq(rf, f) {
				return i
			}
		}
		return -1
	}

	for _, s := range segments {
		r := rowOf(s.Point.Freq)
		if r < 0 {
			continue
		}
		var glyph rune
		switch {
		case s.Task == Idle:
			glyph = '.'
		case s.Task == SwitchHalt:
			glyph = '#'
		case s.Task < len(opts.TaskNames) && opts.TaskNames[s.Task] != "":
			name := []rune(opts.TaskNames[s.Task])
			glyph = name[len(name)-1] // "T1" -> '1'
		default:
			glyph = rune('1' + s.Task%9)
		}
		c0, c1 := col(s.Start), col(s.End-fpx.Tiny)
		for c := c0; c <= c1; c++ {
			rows[rowOf(s.Point.Freq)][c] = glyph
		}
		_ = r
	}

	var b strings.Builder
	for i, f := range freqs {
		fmt.Fprintf(&b, "f=%4.2f |%s|\n", f, string(rows[i]))
	}
	// Time ruler.
	fmt.Fprintf(&b, "        0%s%.4g ms\n", strings.Repeat("-", width-1), end)
	return b.String()
}
