package trace

import (
	"math"
	"strings"
	"testing"

	"rtdvs/internal/machine"
)

var (
	p50  = machine.OperatingPoint{Freq: 0.5, Voltage: 3}
	p75  = machine.OperatingPoint{Freq: 0.75, Voltage: 4}
	p100 = machine.OperatingPoint{Freq: 1.0, Voltage: 5}
)

func TestRecorderMergesContiguousSegments(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 1, Point: p50})
	r.Add(Segment{Task: 0, Start: 1, End: 2, Point: p50})
	r.Add(Segment{Task: 0, Start: 2, End: 3, Point: p75}) // point change: no merge
	r.Add(Segment{Task: 1, Start: 3, End: 4, Point: p75}) // task change: no merge
	segs := r.Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3: %+v", len(segs), segs)
	}
	if segs[0].Start != 0 || segs[0].End != 2 {
		t.Errorf("merged segment = [%v,%v], want [0,2]", segs[0].Start, segs[0].End)
	}
}

func TestRecorderDropsZeroLength(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 5, End: 5, Point: p50})
	if len(r.Segments()) != 0 {
		t.Error("zero-length segment retained")
	}
}

func TestRecorderNoMergeAcrossGap(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 1, Point: p50})
	r.Add(Segment{Task: 0, Start: 2, End: 3, Point: p50})
	if len(r.Segments()) != 2 {
		t.Error("segments across a gap were merged")
	}
}

func TestBusyTime(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 2, Point: p50})
	r.Add(Segment{Task: Idle, Start: 2, End: 5, Point: p50})
	r.Add(Segment{Task: SwitchHalt, Start: 5, End: 5.4, Point: p75})
	r.Add(Segment{Task: 1, Start: 5.4, End: 7, Point: p75})
	if got := r.BusyTime(); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("BusyTime = %v, want 3.6", got)
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 1, Point: p50})
	r.Reset()
	if len(r.Segments()) != 0 {
		t.Error("Reset did not clear segments")
	}
}

func TestSegmentsReturnsCopy(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 1, Point: p50})
	segs := r.Segments()
	segs[0].End = 99
	if r.Segments()[0].End == 99 {
		t.Error("Segments aliases internal storage")
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, RenderOptions{}); !strings.Contains(got, "empty") {
		t.Errorf("Render(nil) = %q", got)
	}
}

func TestRenderRowsAndGlyphs(t *testing.T) {
	segs := []Segment{
		{Task: 0, Start: 0, End: 4, Point: p100},
		{Task: 1, Start: 4, End: 8, Point: p50},
		{Task: Idle, Start: 8, End: 16, Point: p50},
	}
	out := Render(segs, RenderOptions{Width: 16, TaskNames: []string{"T1", "T2"}, End: 16})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two frequency rows + ruler
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "f=1.00") {
		t.Errorf("first row should be the highest frequency: %q", lines[0])
	}
	if !strings.Contains(lines[0], "1111") {
		t.Errorf("T1 glyphs missing on the 1.0 row: %q", lines[0])
	}
	if !strings.Contains(lines[1], "2222") || !strings.Contains(lines[1], "....") {
		t.Errorf("T2/idle glyphs missing on the 0.5 row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "16 ms") {
		t.Errorf("ruler missing end time: %q", lines[2])
	}
}

func TestRenderSwitchHaltGlyph(t *testing.T) {
	segs := []Segment{
		{Task: 0, Start: 0, End: 4, Point: p100},
		{Task: SwitchHalt, Start: 4, End: 8, Point: p50},
	}
	out := Render(segs, RenderOptions{Width: 8, End: 8})
	if !strings.Contains(out, "#") {
		t.Errorf("switch halt glyph missing:\n%s", out)
	}
}

func TestRenderDefaultEndAndWidth(t *testing.T) {
	segs := []Segment{{Task: 0, Start: 0, End: 10, Point: p100}}
	out := Render(segs, RenderOptions{})
	if !strings.Contains(out, "10 ms") {
		t.Errorf("default end not derived from last segment:\n%s", out)
	}
}

// TestRenderSingleTask pins the degenerate one-task chart: a single
// frequency row, completely filled, plus the ruler.
func TestRenderSingleTask(t *testing.T) {
	segs := []Segment{{Task: 0, Start: 0, End: 20, Point: p100}}
	out := Render(segs, RenderOptions{Width: 10, TaskNames: []string{"T1"}, End: 20})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 frequency row + ruler:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "|1111111111|") {
		t.Errorf("single-task row not fully filled: %q", lines[0])
	}
}

// TestRenderPreemption draws a preempted-and-resumed task: T1 at half
// speed is interrupted by T2 at full speed and later continues. The
// resumed work must stay a separate segment (same task, same point, but
// not contiguous) and reappear on T1's frequency row after a gap.
func TestRenderPreemption(t *testing.T) {
	var r Recorder
	r.Add(Segment{Task: 0, Start: 0, End: 4, Point: p50})
	r.Add(Segment{Task: 1, Start: 4, End: 8, Point: p100})
	r.Add(Segment{Task: 0, Start: 8, End: 12, Point: p50})
	segs := r.Segments()
	if len(segs) != 3 {
		t.Fatalf("preemption merged away: %d segments, want 3: %+v", len(segs), segs)
	}

	out := Render(segs, RenderOptions{Width: 12, TaskNames: []string{"T1", "T2"}, End: 12})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two frequency rows + ruler
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "    2222    ") {
		t.Errorf("preempting task not centered on the 1.0 row: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1111    1111") {
		t.Errorf("preempted task should straddle the gap on the 0.5 row: %q", lines[1])
	}
}

// TestRenderOverlappingSegments feeds Render two segments whose time
// ranges overlap — the shape bad accounting would produce. The chart
// must stay well-formed, with the later segment overwriting the shared
// columns (last writer wins).
func TestRenderOverlappingSegments(t *testing.T) {
	segs := []Segment{
		{Task: 0, Start: 0, End: 8, Point: p100},
		{Task: 1, Start: 4, End: 12, Point: p100},
	}
	out := Render(segs, RenderOptions{Width: 12, TaskNames: []string{"T1", "T2"}, End: 12})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "|111122222222|") {
		t.Errorf("overlap not resolved last-writer-wins: %q", lines[0])
	}
}

func TestSegmentDuration(t *testing.T) {
	s := Segment{Start: 1.5, End: 4}
	if s.Duration() != 2.5 {
		t.Errorf("Duration = %v", s.Duration())
	}
}
