// Package yds implements the optimal clairvoyant voltage schedule of
// Yao, Demers & Shenker (FOCS 1995) as a deadline-aware lower bound on
// RT-DVS energy.
//
// The paper's own reference curve (internal/bound) reflects execution
// throughput only: total cycles spread over the whole simulation,
// deadlines ignored. YDS instead computes, for a concrete set of jobs
// (release, deadline, actual work), the minimum-energy speed function
// that meets every deadline — assuming clairvoyant knowledge of each
// invocation's actual demand. No online algorithm, including laEDF, can
// beat it; unlike the throughput bound it accounts for the bursts that
// force high speeds, so it sits between the throughput bound and the
// online policies and quantifies how much of the remaining gap is
// closable at all.
//
// The algorithm repeatedly extracts the critical interval — the window
// [s, t] maximizing the intensity g(s,t) = Σ work of jobs contained in
// [s, t] divided by (t − s) — schedules those jobs at speed g, removes
// them, collapses the interval, and recurses. With a convex
// power-versus-speed curve this greedy schedule is energy optimal; for a
// discrete-point machine the convexification (time-mixing adjacent
// operating points, exactly internal/bound's hull) gives the achievable
// optimum for negligible switch overheads.
package yds

import (
	"fmt"
	"math"
	"sort"

	"rtdvs/internal/bound"
	"rtdvs/internal/machine"
	"rtdvs/internal/task"
)

// Job is one unit of clairvoyant work: released at Arrival, due at
// Deadline, needing Work cycles (milliseconds at maximum frequency).
type Job struct {
	Arrival  float64 `json:"arrival"`
	Deadline float64 `json:"deadline"`
	Work     float64 `json:"work"`
}

// Segment is one piece of the optimal speed function: run at Speed
// (relative frequency, may exceed the achievable range for infeasible
// inputs) during [Start, End) of the original timeline.
type Segment struct {
	Start, End float64
	Speed      float64
	Work       float64
}

// Schedule computes the YDS critical-interval decomposition for the
// jobs. Segments come back sorted by decreasing speed (the extraction
// order); their total work equals the total job work. Zero-work inputs
// yield an empty schedule.
func Schedule(jobs []Job) ([]Segment, error) {
	js := make([]Job, 0, len(jobs))
	for i, j := range jobs {
		if j.Work < 0 || j.Deadline <= j.Arrival || math.IsNaN(j.Work) {
			return nil, fmt.Errorf("yds: job %d invalid: %+v", i, j)
		}
		if j.Work > 0 {
			js = append(js, j)
		}
	}
	var out []Segment
	for len(js) > 0 {
		s, t, g, inside := criticalInterval(js)
		if g <= 0 {
			break
		}
		var work float64
		for _, idx := range inside {
			work += js[idx].Work
		}
		out = append(out, Segment{Start: s, End: t, Speed: g, Work: work})

		// Remove the scheduled jobs and collapse [s, t] out of the
		// timeline: instants after t shift left by the interval length;
		// instants inside map to s.
		collapse := func(x float64) float64 {
			switch {
			case x <= s:
				return x
			case x >= t:
				return x - (t - s)
			default:
				return s
			}
		}
		next := js[:0]
		del := map[int]bool{}
		for _, idx := range inside {
			del[idx] = true
		}
		for idx := range js {
			if del[idx] {
				continue
			}
			j := js[idx]
			j.Arrival = collapse(j.Arrival)
			j.Deadline = collapse(j.Deadline)
			next = append(next, j)
		}
		js = next
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Speed > out[b].Speed })
	return out, nil
}

// criticalInterval finds the maximum-intensity interval. Candidate
// endpoints are job arrivals (starts) and deadlines (ends); this is
// O(n³) in the number of jobs per round, fine at simulation scale.
func criticalInterval(js []Job) (s, t, g float64, inside []int) {
	starts := make([]float64, 0, len(js))
	ends := make([]float64, 0, len(js))
	for _, j := range js {
		starts = append(starts, j.Arrival)
		ends = append(ends, j.Deadline)
	}
	g = -1
	for _, a := range starts {
		for _, d := range ends {
			if d <= a {
				continue
			}
			var work float64
			for _, j := range js {
				if j.Arrival >= a && j.Deadline <= d {
					work += j.Work
				}
			}
			if work <= 0 {
				continue
			}
			if gg := work / (d - a); gg > g+1e-15 {
				g = gg
				s, t = a, d
			}
		}
	}
	if g <= 0 {
		return 0, 0, 0, nil
	}
	for idx, j := range js {
		if j.Arrival >= s && j.Deadline <= t {
			inside = append(inside, idx)
		}
	}
	return s, t, g, inside
}

// Feasible reports whether the schedule never needs more than full
// speed — i.e. whether a clairvoyant scheduler could meet every deadline
// on the platform at all.
func Feasible(segs []Segment) bool {
	for _, s := range segs {
		if s.Speed > 1+1e-9 {
			return false
		}
	}
	return true
}

// Energy returns the minimum energy for executing the schedule on the
// platform: each critical interval runs at the cheapest (possibly
// time-mixed) operating combination sustaining its intensity, per
// bound.MinPower. Infeasible segments (speed above 1) are charged at
// full speed — the closest any real schedule could come.
func Energy(spec *machine.Spec, segs []Segment) (float64, error) {
	var e float64
	for _, s := range segs {
		rate := math.Min(s.Speed, 1)
		p, err := bound.MinPower(spec, rate)
		if err != nil {
			return 0, err
		}
		// Power sustained for the interval; for a capped infeasible
		// segment the same work takes proportionally longer than the
		// interval, charge it at the full-speed rate for its work.
		if s.Speed > 1 {
			e += s.Work * spec.Max().EnergyPerCycle()
			continue
		}
		e += p * (s.End - s.Start)
	}
	return e, nil
}

// JobsFromTaskSet expands a periodic task set with an execution model
// into the concrete jobs of one simulation run: every invocation with a
// deadline at or before the horizon. Phases are honored.
func JobsFromTaskSet(ts *task.Set, exec task.ExecModel, horizon float64) []Job {
	if exec == nil {
		exec = task.FullWCET{}
	}
	var jobs []Job
	for i := 0; i < ts.Len(); i++ {
		tk := ts.Task(i)
		inv := 0
		for rel := tk.Phase; rel+tk.Period <= horizon+1e-9; rel += tk.Period {
			w := exec.Cycles(i, inv, tk.WCET)
			if w > tk.WCET {
				w = tk.WCET
			}
			jobs = append(jobs, Job{Arrival: rel, Deadline: rel + tk.Period, Work: w})
			inv++
		}
	}
	return jobs
}

// LowerBound is the one-call convenience: the minimum clairvoyant energy
// for running the task set under the execution model up to the horizon.
func LowerBound(spec *machine.Spec, ts *task.Set, exec task.ExecModel, horizon float64) (float64, error) {
	segs, err := Schedule(JobsFromTaskSet(ts, exec, horizon))
	if err != nil {
		return 0, err
	}
	return Energy(spec, segs)
}

// PartitionedLowerBound is the per-partition generalization of
// LowerBound: assign maps each task index to its core in [0, cores),
// and each core's clairvoyant optimum is computed over the jobs of its
// own tasks alone — a statically partitioned system cannot shift work
// between cores, so the per-core optima sum. Execution-model draws are
// keyed by the ORIGINAL task indexes, so a stateful-by-index model (a
// DistExec) produces the same demands it would in an unpartitioned
// expansion and bounds stay comparable across placements.
func PartitionedLowerBound(spec *machine.Spec, ts *task.Set, assign []int, cores int, exec task.ExecModel, horizon float64) (float64, error) {
	if cores < 1 {
		cores = 1
	}
	if len(assign) != ts.Len() {
		return 0, fmt.Errorf("yds: assignment covers %d tasks, set has %d", len(assign), ts.Len())
	}
	if exec == nil {
		exec = task.FullWCET{}
	}
	var total float64
	for c := 0; c < cores; c++ {
		var jobs []Job
		for i := 0; i < ts.Len(); i++ {
			if assign[i] != c {
				continue
			}
			tk := ts.Task(i)
			inv := 0
			for rel := tk.Phase; rel+tk.Period <= horizon+1e-9; rel += tk.Period {
				w := exec.Cycles(i, inv, tk.WCET)
				if w > tk.WCET {
					w = tk.WCET
				}
				jobs = append(jobs, Job{Arrival: rel, Deadline: rel + tk.Period, Work: w})
				inv++
			}
		}
		segs, err := Schedule(jobs)
		if err != nil {
			return 0, fmt.Errorf("yds: core %d: %w", c, err)
		}
		e, err := Energy(spec, segs)
		if err != nil {
			return 0, fmt.Errorf("yds: core %d: %w", c, err)
		}
		total += e
	}
	return total, nil
}
