package yds

import (
	"math"
	"math/rand"
	"testing"

	"rtdvs/internal/bound"
	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/sim"
	"rtdvs/internal/task"
)

func TestScheduleSingleJob(t *testing.T) {
	segs, err := Schedule([]Job{{Arrival: 2, Deadline: 10, Work: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments", len(segs))
	}
	if segs[0].Speed != 0.5 || segs[0].Start != 2 || segs[0].End != 10 {
		t.Errorf("segment = %+v, want speed 0.5 over [2,10]", segs[0])
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule([]Job{{Arrival: 5, Deadline: 5, Work: 1}}); err == nil {
		t.Error("zero-width job accepted")
	}
	if _, err := Schedule([]Job{{Arrival: 0, Deadline: 10, Work: -1}}); err == nil {
		t.Error("negative work accepted")
	}
	segs, err := Schedule(nil)
	if err != nil || len(segs) != 0 {
		t.Errorf("empty input: %v %v", segs, err)
	}
	// Zero-work jobs are dropped.
	segs, err = Schedule([]Job{{Arrival: 0, Deadline: 10, Work: 0}})
	if err != nil || len(segs) != 0 {
		t.Errorf("zero-work input: %v %v", segs, err)
	}
}

// The textbook two-job example: a tight job inside a loose one. The
// critical interval is the tight job's window; the loose job's work
// spreads over the collapsed remainder.
func TestScheduleCriticalIntervalExtraction(t *testing.T) {
	segs, err := Schedule([]Job{
		{Arrival: 0, Deadline: 10, Work: 4}, // loose
		{Arrival: 4, Deadline: 6, Work: 2},  // tight: intensity 1.0
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("%d segments: %+v", len(segs), segs)
	}
	if segs[0].Speed != 1.0 || segs[0].Start != 4 || segs[0].End != 6 {
		t.Errorf("critical segment = %+v", segs[0])
	}
	// Remaining: 4 cycles over the 8 ms left after collapsing [4,6].
	if math.Abs(segs[1].Speed-0.5) > 1e-12 {
		t.Errorf("residual speed = %v, want 0.5", segs[1].Speed)
	}
	var work float64
	for _, s := range segs {
		work += s.Work
	}
	if math.Abs(work-6) > 1e-12 {
		t.Errorf("total work = %v, want 6", work)
	}
}

func TestFeasible(t *testing.T) {
	over, err := Schedule([]Job{{Arrival: 0, Deadline: 2, Work: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if Feasible(over) {
		t.Error("intensity 1.5 reported feasible")
	}
	ok, err := Schedule([]Job{{Arrival: 0, Deadline: 4, Work: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !Feasible(ok) {
		t.Error("intensity 0.75 reported infeasible")
	}
}

func TestJobsFromTaskSet(t *testing.T) {
	ts := task.PaperExample()
	jobs := JobsFromTaskSet(ts, task.FullWCET{}, 280)
	if len(jobs) != 35+28+20 {
		t.Fatalf("%d jobs over one hyperperiod, want 83", len(jobs))
	}
	var work float64
	for _, j := range jobs {
		work += j.Work
		if j.Deadline > 280+1e-9 {
			t.Fatalf("job beyond horizon: %+v", j)
		}
	}
	want := 35*3.0 + 28*3 + 20*1
	if math.Abs(work-want) > 1e-9 {
		t.Errorf("total work = %v, want %v", work, want)
	}

	phased := task.MustSet(task.Task{Period: 10, WCET: 2, Phase: 5})
	pj := JobsFromTaskSet(phased, nil, 100)
	if len(pj) != 9 { // releases at 5..85 with deadlines ≤ 95... 5,15,...,85 → deadline 95 ≤ 100: 9 jobs
		t.Errorf("%d phased jobs, want 9", len(pj))
	}
	if pj[0].Arrival != 5 || pj[0].Deadline != 15 {
		t.Errorf("first phased job = %+v", pj[0])
	}
}

// The clairvoyant optimum must sit between the throughput-only bound and
// every online policy (perfect halt, so energies are comparable).
func TestYDSBetweenBoundAndPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(4)
		u := 0.2 + 0.75*r.Float64()
		g := task.Generator{N: n, Utilization: u, Rand: r}
		ts, err := g.Generate()
		if err != nil {
			continue
		}
		horizon := 4 * ts.MaxPeriod()
		c := 0.4 + 0.6*r.Float64()
		exec := task.ConstantFraction{C: c}
		specs := []*machine.Spec{machine.Machine0(), machine.Machine2()}
		m := specs[r.Intn(2)]
		if len(JobsFromTaskSet(ts, exec, horizon)) > 250 {
			continue // keep the O(n³) critical-interval search quick
		}

		opt, err := LowerBound(m, ts, exec, horizon)
		if err != nil {
			t.Fatal(err)
		}

		for _, name := range []string{"staticEDF", "ccEDF", "laEDF"} {
			p, err := core.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{Tasks: ts, Machine: m, Policy: p, Exec: exec, Horizon: horizon})
			if err != nil {
				t.Fatal(err)
			}
			// The policy also executes invocations released before the
			// horizon whose deadlines lie beyond it, so it can only do
			// MORE work than the YDS job set: opt must not exceed it.
			if res.TotalEnergy < opt-1e-6*math.Max(1, opt) {
				t.Fatalf("trial %d: %s energy %v beats clairvoyant optimum %v on %s (c=%v)",
					trial, name, res.TotalEnergy, opt, ts, c)
			}
		}

		// And the throughput-only bound for the same jobs cannot exceed
		// the deadline-aware optimum.
		jobs := JobsFromTaskSet(ts, exec, horizon)
		var work float64
		for _, j := range jobs {
			work += j.Work
		}
		thr, err := bound.Energy(m, work, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if opt < thr-1e-6*math.Max(1, thr) {
			t.Fatalf("trial %d: YDS %v below throughput bound %v", trial, opt, thr)
		}
	}
}

// For a single task the optimum equals the throughput bound: the work
// spreads evenly with no deadline pressure beyond the average.
func TestYDSMatchesThroughputBoundSingleTask(t *testing.T) {
	ts := task.MustSet(task.Task{Period: 10, WCET: 4})
	m := machine.Machine0()
	opt, err := LowerBound(m, ts, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := bound.Energy(m, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-thr) > 1e-6 {
		t.Errorf("single-task optimum %v != throughput bound %v", opt, thr)
	}
}

// An infeasible job set must be flagged and charged at least full-speed
// energy for its work.
func TestYDSInfeasibleCharging(t *testing.T) {
	segs, err := Schedule([]Job{
		{Arrival: 0, Deadline: 2, Work: 4},
		{Arrival: 0, Deadline: 10, Work: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if Feasible(segs) {
		t.Fatal("overload reported feasible")
	}
	e, err := Energy(machine.Machine0(), segs)
	if err != nil {
		t.Fatal(err)
	}
	if e < 4*25 {
		t.Errorf("energy %v below full-speed charge for the infeasible work", e)
	}
}

// Structural properties of the YDS decomposition: extracted intensities
// are non-increasing (the critical interval is always the densest left),
// and total scheduled work equals total job work.
func TestScheduleStructuralProperties(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(25)
		jobs := make([]Job, n)
		var want float64
		for i := range jobs {
			a := r.Float64() * 100
			d := a + 0.5 + r.Float64()*50
			w := r.Float64() * 5
			jobs[i] = Job{Arrival: a, Deadline: d, Work: w}
			want += w
		}
		segs, err := Schedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var got float64
		for i, s := range segs {
			got += s.Work
			if s.End <= s.Start || s.Speed <= 0 {
				t.Fatalf("trial %d: degenerate segment %+v", trial, s)
			}
			if i > 0 && s.Speed > segs[i-1].Speed+1e-9 {
				t.Fatalf("trial %d: intensities increase: %v after %v", trial, s.Speed, segs[i-1].Speed)
			}
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("trial %d: work not conserved: %v vs %v", trial, got, want)
		}
	}
}

// Adding work can never reduce the optimal energy.
func TestYDSMonotoneInWork(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m := machine.Machine0()
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(10)
		jobs := make([]Job, n)
		for i := range jobs {
			a := r.Float64() * 50
			jobs[i] = Job{Arrival: a, Deadline: a + 1 + r.Float64()*30, Work: r.Float64() * 3}
		}
		segs, err := Schedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		e1, err := Energy(m, segs)
		if err != nil {
			t.Fatal(err)
		}
		extra := append(append([]Job(nil), jobs...), Job{Arrival: 10, Deadline: 30, Work: 2})
		segs2, err := Schedule(extra)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := Energy(m, segs2)
		if err != nil {
			t.Fatal(err)
		}
		if e2 < e1-1e-9 {
			t.Fatalf("trial %d: adding work reduced optimal energy: %v -> %v", trial, e1, e2)
		}
	}
}

// --- partitioned clairvoyant bound ---

// TestPartitionedLowerBoundM1MatchesLowerBound: with one core and the
// all-zero assignment, the partitioned bound is exactly LowerBound.
func TestPartitionedLowerBoundM1MatchesLowerBound(t *testing.T) {
	g := task.Generator{N: 6, Utilization: 0.7, Rand: rand.New(rand.NewSource(3))}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// A short horizon keeps the O(n²) YDS job count small; the equality
	// holds at any horizon.
	horizon := math.Min(3*ts.MaxPeriod(), 600)
	assign := make([]int, ts.Len())
	for _, exec := range []task.ExecModel{nil, task.FullWCET{}, task.ConstantFraction{C: 0.6}} {
		want, err := LowerBound(machine.Machine0(), ts, exec, horizon)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PartitionedLowerBound(machine.Machine0(), ts, assign, 1, exec, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("exec %T: PartitionedLowerBound m=1 = %v, want LowerBound %v", exec, got, want)
		}
	}
}

// TestPartitionedLowerBoundSumsPerCore: the bound over a partition is
// the sum of LowerBound over each core's sub-set (with a per-index
// deterministic model, sub-set indexes do not disturb the draws).
func TestPartitionedLowerBoundSumsPerCore(t *testing.T) {
	ts := func() *task.Set {
		s, err := task.NewSet(
			task.Task{WCET: 2, Period: 10},
			task.Task{WCET: 3, Period: 15},
			task.Task{WCET: 1, Period: 5},
			task.Task{WCET: 4, Period: 20},
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}()
	assign := []int{0, 1, 0, 1}
	horizon := 60.0
	got, err := PartitionedLowerBound(machine.Machine0(), ts, assign, 2, task.FullWCET{}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for c := 0; c < 2; c++ {
		var sub []task.Task
		for i := 0; i < ts.Len(); i++ {
			if assign[i] == c {
				sub = append(sub, ts.Task(i))
			}
		}
		subSet, err := task.NewSet(sub...)
		if err != nil {
			t.Fatal(err)
		}
		e, err := LowerBound(machine.Machine0(), subSet, task.FullWCET{}, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want += e
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PartitionedLowerBound = %v, want per-core sum %v", got, want)
	}
}

// TestPartitionedLowerBoundErrors: a wrong-length assignment is
// rejected; cores < 1 is clamped, not rejected.
func TestPartitionedLowerBoundErrors(t *testing.T) {
	g := task.Generator{N: 4, Utilization: 0.5, Rand: rand.New(rand.NewSource(1))}
	ts, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionedLowerBound(machine.Machine0(), ts, []int{0, 1}, 2, nil, 100); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := PartitionedLowerBound(machine.Machine0(), ts, make([]int, ts.Len()), 0, nil, 100); err != nil {
		t.Errorf("cores=0 should clamp to 1, got %v", err)
	}
}

// TestPartitionedLowerBoundUnderPolicyEnergy: the clairvoyant optimum
// never exceeds what any real policy spends on the same partitioned
// workload (full-WCET, where the bound's demands equal the engine's).
func TestPartitionedLowerBoundUnderPolicyEnergy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := task.Generator{N: 8, Utilization: 1.3, Rand: rand.New(rand.NewSource(seed))}
		ts, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		horizon := math.Min(5*ts.MaxPeriod(), 1000)
		res, err := sim.RunMulti(sim.MultiConfig{
			Tasks:     ts,
			Machine:   machine.Machine0().WithCores(2),
			Policy:    "laEDF",
			Placement: sched.PartitionedWF,
			Exec:      "wcet",
			Horizon:   horizon,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		part, err := sched.PartitionFor(sched.PartitionedWF, ts, 2)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := PartitionedLowerBound(machine.Machine0(), ts, part.Assign, 2, task.FullWCET{}, horizon)
		if err != nil {
			t.Fatal(err)
		}
		// The YDS optimum ignores discrete frequencies and idle floor
		// power, so it sits at or below any policy's spend; allow only
		// horizon-truncation slack (in-flight jobs at the cutoff).
		if lb > res.TotalEnergy*1.01 {
			t.Errorf("seed %d: clairvoyant bound %v above laEDF energy %v", seed, lb, res.TotalEnergy)
		}
	}
}
