// Package rtdvs is a Go implementation of Real-Time Dynamic Voltage
// Scaling (RT-DVS) as described in Pillai & Shin, "Real-Time Dynamic
// Voltage Scaling for Low-Power Embedded Operating Systems" (SOSP 2001).
//
// RT-DVS couples dynamic voltage scaling with the OS real-time scheduler
// so the processor runs as slowly (and at as low a voltage) as the task
// set's deadlines allow. The package provides:
//
//   - the periodic real-time task model and the paper's random task-set
//     generator,
//   - EDF and RM schedulers with scaled schedulability tests,
//   - the five RT-DVS policies (statically-scaled EDF/RM,
//     cycle-conserving EDF/RM, look-ahead EDF) plus the non-DVS baseline,
//   - a discrete-event processor/energy simulator with pluggable machine
//     specifications (frequency/voltage tables),
//   - the theoretical lower bound on energy,
//   - an RTOS-style kernel with hot-swappable policy modules, dynamic
//     task admission, aperiodic servers, and a whole-system power meter,
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	ts, _ := rtdvs.NewTaskSet(
//	    rtdvs.Task{Name: "control", Period: 8, WCET: 3},
//	    rtdvs.Task{Name: "sensor", Period: 10, WCET: 3},
//	)
//	policy, _ := rtdvs.NewPolicy("laEDF")
//	res, _ := rtdvs.Simulate(rtdvs.SimConfig{
//	    Tasks:   ts,
//	    Machine: rtdvs.Machine0(),
//	    Policy:  policy,
//	})
//	fmt.Printf("energy: %.1f, misses: %d\n", res.TotalEnergy, res.MissCount())
//
// Times are in milliseconds; worst-case computation times (WCET) are
// expressed at the maximum processor frequency. Energy is reported in
// cycle·V² units (only ratios between runs are meaningful).
package rtdvs

import (
	"math/rand"

	"rtdvs/internal/bound"
	"rtdvs/internal/core"
	"rtdvs/internal/machine"
	"rtdvs/internal/sched"
	"rtdvs/internal/sim"
	"rtdvs/internal/task"
	"rtdvs/internal/trace"
)

// Task is one periodic real-time task (period and worst-case computation
// time in milliseconds; WCET at maximum frequency).
type Task = task.Task

// TaskSet is an immutable collection of periodic tasks.
type TaskSet = task.Set

// ExecModel decides the actual computation demand of each invocation.
type ExecModel = task.ExecModel

// Actual-computation models from the paper's evaluation.
type (
	// FullWCET makes every invocation use its worst case.
	FullWCET = task.FullWCET
	// ConstantFraction uses a fixed fraction of the worst case.
	ConstantFraction = task.ConstantFraction
	// UniformFraction draws uniformly from a fraction range.
	UniformFraction = task.UniformFraction
)

// OperatingPoint is one (relative frequency, voltage) pair of a platform.
type OperatingPoint = machine.OperatingPoint

// MachineSpec is a DVS-capable platform description.
type MachineSpec = machine.Spec

// SwitchOverhead models the mandatory stop interval of operating point
// transitions.
type SwitchOverhead = machine.SwitchOverhead

// Policy is an RT-DVS frequency/voltage selection policy.
type Policy = core.Policy

// SimConfig configures one simulation run.
type SimConfig = sim.Config

// Result reports a simulation run's energy, timing, and deadline outcome.
type Result = sim.Result

// TraceRecorder captures execution traces for rendering.
type TraceRecorder = trace.Recorder

// TraceSegment is one interval of a recorded execution trace.
type TraceSegment = trace.Segment

// NewTaskSet builds and validates a task set.
func NewTaskSet(tasks ...Task) (*TaskSet, error) { return task.NewSet(tasks...) }

// PaperExampleTaskSet returns the worked example of the paper's Table 2.
func PaperExampleTaskSet() *TaskSet { return task.PaperExample() }

// GenerateTaskSet draws a random task set with the paper's generator:
// n tasks, periods mixed over 1–10/10–100/100–1000 ms, scaled to the
// target worst-case utilization. The seed makes the draw reproducible.
func GenerateTaskSet(n int, utilization float64, seed int64) (*TaskSet, error) {
	g := task.Generator{N: n, Utilization: utilization, Rand: rand.New(rand.NewSource(seed))}
	return g.Generate()
}

// Predefined machine specifications from the paper.
func Machine0() *MachineSpec  { return machine.Machine0() }
func Machine1() *MachineSpec  { return machine.Machine1() }
func Machine2() *MachineSpec  { return machine.Machine2() }
func LaptopK62() *MachineSpec { return machine.LaptopK62() }

// MachineByName looks up a predefined machine spec ("machine0",
// "machine1", "machine2", "k6-2+"); it returns nil for unknown names.
func MachineByName(name string) *MachineSpec { return machine.ByName(name) }

// K62SwitchOverhead is the transition overhead measured on the prototype:
// 41 µs for frequency-only changes, 0.4 ms when the voltage changes.
func K62SwitchOverhead() SwitchOverhead { return machine.K62SwitchOverhead }

// NewPolicy constructs a policy by its paper name: "none" (or "noneRM"),
// "staticEDF", "staticRM", "ccEDF", "ccRM", "laEDF".
func NewPolicy(name string) (Policy, error) { return core.ByName(name) }

// PolicyNames lists the policy names in Table 4 order.
func PolicyNames() []string { return core.Names() }

// Simulate runs one discrete-event simulation and returns its result.
func Simulate(cfg SimConfig) (*Result, error) { return sim.Run(cfg) }

// LowerBound returns the theoretical minimum energy for executing the
// given cycles over the given duration on the platform — the reference
// curve of the paper's figures. No algorithm can do better.
func LowerBound(spec *MachineSpec, cycles, duration float64) (float64, error) {
	return bound.Energy(spec, cycles, duration)
}

// EDFSchedulable reports whether the set passes the EDF utilization test
// at relative frequency alpha (Figure 1).
func EDFSchedulable(ts *TaskSet, alpha float64) bool { return sched.EDFTest(ts, alpha) }

// RMSchedulable reports whether the set passes the sufficient RM test at
// relative frequency alpha (Figure 1).
func RMSchedulable(ts *TaskSet, alpha float64) bool { return sched.RMTest(ts, alpha) }

// RenderTrace renders recorded segments as an ASCII Gantt chart in the
// style of the paper's example figures.
func RenderTrace(segs []TraceSegment, width int, names []string, end float64) string {
	return trace.Render(segs, trace.RenderOptions{Width: width, TaskNames: names, End: end})
}
