package rtdvs

import (
	"math"
	"strings"
	"testing"
)

// The public facade must support the full quickstart flow.
func TestFacadeQuickstart(t *testing.T) {
	ts, err := NewTaskSet(
		Task{Name: "control", Period: 8, WCET: 3},
		Task{Name: "sensor", Period: 10, WCET: 3},
		Task{Name: "log", Period: 14, WCET: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !EDFSchedulable(ts, 1) {
		t.Fatal("example set must be EDF schedulable")
	}
	if RMSchedulable(ts, 0.75) {
		t.Error("example set must fail the RM test at 0.75")
	}

	var baseline float64
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(SimConfig{
			Tasks:   ts,
			Machine: Machine0(),
			Policy:  p,
			Exec:    ConstantFraction{C: 0.7},
			Horizon: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MissCount() != 0 {
			t.Errorf("%s: %d misses", name, res.MissCount())
		}
		if name == "none" {
			baseline = res.TotalEnergy
		} else if res.TotalEnergy > baseline {
			t.Errorf("%s used more energy than the baseline", name)
		}
	}

	lb, err := LowerBound(Machine0(), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Errorf("lower bound = %v", lb)
	}
}

func TestFacadeGenerator(t *testing.T) {
	ts, err := GenerateTaskSet(8, 0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 8 || math.Abs(ts.Utilization()-0.7) > 1e-6 {
		t.Errorf("generated %d tasks at U=%v", ts.Len(), ts.Utilization())
	}
	ts2, err := GenerateTaskSet(8, 0.7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ts.String() != ts2.String() {
		t.Error("same seed produced different sets")
	}
}

func TestFacadeMachines(t *testing.T) {
	for _, name := range []string{"machine0", "machine1", "machine2", "k6-2+"} {
		if MachineByName(name) == nil {
			t.Errorf("MachineByName(%q) = nil", name)
		}
	}
	if MachineByName("486") != nil {
		t.Error("unknown machine resolved")
	}
	if K62SwitchOverhead().VoltageChange != 0.4 {
		t.Error("K6-2+ overhead constants wrong")
	}
}

func TestFacadeTraceRendering(t *testing.T) {
	ts := PaperExampleTaskSet()
	p, err := NewPolicy("ccRM")
	if err != nil {
		t.Fatal(err)
	}
	var rec TraceRecorder
	if _, err := Simulate(SimConfig{
		Tasks: ts, Machine: Machine0(), Policy: p, Horizon: 16, Recorder: &rec,
	}); err != nil {
		t.Fatal(err)
	}
	out := RenderTrace(rec.Segments(), 64, []string{"T1", "T2", "T3"}, 16)
	if !strings.Contains(out, "f=1.00") {
		t.Errorf("trace render:\n%s", out)
	}
}

func TestFacadeRTOS(t *testing.T) {
	p, err := NewPolicy("ccEDF")
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernelNoOverhead(Machine0(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.AddTask(KernelTaskConfig{Name: "a", Period: 10, WCET: 2}, KernelAddOptions{}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(k, "srv", 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	meter := NewPowerMeter(k.CPU(), DefaultSystemPower(), false, false)
	meter.Mark(0)
	if _, err := srv.Submit("job", 1); err != nil {
		t.Fatal(err)
	}
	k.Step(500)
	if len(k.Misses()) != 0 {
		t.Errorf("misses: %v", k.Misses())
	}
	if srv.Pending() != 0 {
		t.Error("job not served")
	}
	if w := meter.Average(k.Now()); w < 7 || w > 28 {
		t.Errorf("system power = %v W, outside plausible range", w)
	}
}

func TestFacadePredefinedMachinesDistinct(t *testing.T) {
	specs := []*MachineSpec{Machine0(), Machine1(), Machine2(), LaptopK62()}
	points := map[int]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		points[len(s.Points)] = true
	}
	if len(points) < 3 {
		t.Error("predefined machines suspiciously similar")
	}
}

func TestFacadeKernelWithOverhead(t *testing.T) {
	p, err := NewPolicy("ccEDF")
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(LaptopK62(), K62SwitchOverhead(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.AddTask(KernelTaskConfig{Name: "t", Period: 100, WCET: 30},
		KernelAddOptions{Immediate: true}); err != nil {
		t.Fatal(err)
	}
	k.Step(1000)
	if k.CPU().Spec().Name != "k6-2+" {
		t.Errorf("spec = %s", k.CPU().Spec().Name)
	}
}
