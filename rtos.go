package rtdvs

import (
	"rtdvs/internal/machine"
	"rtdvs/internal/rtos"
)

// RTOS-facing facade: the Section 4 prototype architecture.

// Kernel is the RTOS executive: periodic task registry, hot-swappable
// RT-DVS policy modules, a PowerNow!-style CPU device, and a /proc-like
// textual interface. It runs in deterministic virtual time via Step.
type Kernel = rtos.Kernel

// KernelTaskConfig registers a periodic task with the kernel.
type KernelTaskConfig = rtos.TaskConfig

// KernelAddOptions controls admission (immediate versus deferred first
// release).
type KernelAddOptions = rtos.AddOptions

// TaskID identifies a task registered with a kernel.
type TaskID = rtos.TaskID

// CPU is the DVS-capable processor device.
type CPU = rtos.CPU

// PowerMeter measures whole-system average power, oscilloscope-style.
type PowerMeter = rtos.PowerMeter

// SystemPower is the component power model of the prototype laptop.
type SystemPower = rtos.SystemPower

// Server is a polling periodic server for aperiodic and sporadic jobs.
type Server = rtos.Server

// Job is one unit of aperiodic work submitted to a Server.
type Job = rtos.Job

// NewKernel creates a kernel on the given platform with the given policy
// module and transition overheads.
func NewKernel(spec *MachineSpec, overhead SwitchOverhead, policy Policy) (*Kernel, error) {
	return rtos.NewKernel(spec, overhead, policy)
}

// NewKernelNoOverhead creates a kernel with instantaneous operating point
// transitions (the simulator's assumption).
func NewKernelNoOverhead(spec *MachineSpec, policy Policy) (*Kernel, error) {
	return rtos.NewKernel(spec, machine.SwitchOverhead{}, policy)
}

// DefaultSystemPower returns the component power model calibrated against
// the paper's Table 1.
func DefaultSystemPower() SystemPower { return rtos.DefaultSystemPower() }

// NewPowerMeter attaches a power meter to a kernel's CPU with the given
// peripheral states.
func NewPowerMeter(cpu *CPU, sys SystemPower, screenOn, diskSpinning bool) *PowerMeter {
	return rtos.NewPowerMeter(cpu, sys, screenOn, diskSpinning)
}

// NewServer registers a polling periodic server with the kernel.
func NewServer(k *Kernel, name string, period, budget float64) (*Server, error) {
	return rtos.NewServer(k, name, period, budget)
}
