package rtdvs

// Serving-layer benchmark: the full HTTP handler path of POST
// /v1/simulate — strict decode, validation, semaphore admission, a real
// simulation run, JSON response — measured per request with allocation
// counts, so regressions in the serving overhead (not just the
// simulator core) show up in the rtdvs-bench report.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rtdvs/internal/serve"
	"rtdvs/internal/task"
)

func BenchmarkServeSimulate(b *testing.B) {
	s := serve.New(serve.Config{Logf: func(string, ...any) {}})
	s.Start()
	defer s.Shutdown(b.Context())
	h := s.Handler()

	body, err := json.Marshal(serve.SimulateRequest{
		Tasks:   []task.Task{{Period: 8, WCET: 3}, {Period: 10, WCET: 3}, {Period: 14, WCET: 1}},
		Policy:  "ccEDF",
		Exec:    "c=0.9",
		Horizon: 280,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := string(body)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
